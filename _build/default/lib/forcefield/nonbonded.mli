(** Nonbonded pair-interaction functional forms.

    Each form maps a squared separation to an energy and to the scalar
    [f_over_r] such that the force on atom i is [f_over_r * (ri - rj)]. The
    generality layer (Mdsp_core.Table) compiles any of these — or any
    user-supplied radial function — into machine interpolation tables; this
    module is the analytic reference. Units: kcal/mol, angstroms, charges in
    units of e. *)

type form =
  | Lennard_jones of { epsilon : float; sigma : float }
  | Buckingham of { a : float; b : float; c : float }
      (** a*exp(-b r) - c / r^6 *)
  | Coulomb of { qq : float }  (** qq = k_e * q_i * q_j *)
  | Coulomb_erfc of { qq : float; beta : float }
      (** real-space Ewald term: qq * erfc(beta r) / r *)
  | Gaussian_repulsion of { height : float; width : float }
      (** height * exp(-(r/width)^2), a soft-core form used in enhanced
          sampling and coarse models *)
  | Soft_core_lj of { epsilon : float; sigma : float; alpha : float; lambda : float }
      (** Beutler soft-core LJ for alchemical transformations *)
  | Morse of { d_e : float; a : float; r0 : float }
      (** D_e (1 - exp(-a (r - r0)))^2 - D_e : a bond-like pair well *)
  | Yukawa of { a : float; kappa : float }
      (** screened Coulomb: A exp(-kappa r) / r *)
  | Lj_12_6_4 of { epsilon : float; sigma : float; c4 : float }
      (** LJ plus an r^-4 charge-induced-dipole term (ion models) *)
  | Sum of form list

(** [eval form r2] is [(energy, f_over_r)] at squared distance [r2]. *)
val eval : form -> float -> float * float

(** Energy only. *)
val energy : form -> float -> float

(** Analytic energy at the cutoff; used for shifting. *)
val shift_at : form -> float -> float

(** Truncation scheme applied on top of a form. *)
type truncation =
  | Truncate  (** plain cutoff: discontinuous energy *)
  | Shift  (** energy shifted to zero at the cutoff *)
  | Switch of { r_on : float }
      (** CHARMM-style switching of the energy between r_on and the cutoff *)

(** [eval_truncated form ~cutoff ~trunc r2] is [(energy, f_over_r)], zero
    beyond the cutoff. *)
val eval_truncated :
  form -> cutoff:float -> trunc:truncation -> float -> float * float

(** Lorentz–Berthelot combination of per-type LJ parameters:
    sigma arithmetic mean, epsilon geometric mean. *)
val lorentz_berthelot :
  (float * float) -> (float * float) -> form
