(** Bonded-term evaluation: harmonic bonds, harmonic angles, periodic
    dihedrals.

    Forces are accumulated into the caller's array; each function returns the
    term's potential energy and adds its contribution to the scalar virial
    [W = sum_i f_i . r_i] (computed with minimum-image internal geometry so
    it is box-consistent). On the machine model these terms execute on the
    programmable (flexible) subsystem. *)

open Mdsp_util

type accum = {
  forces : Vec3.t array;
  mutable virial : float;
}

val make_accum : int -> accum
val reset : accum -> unit

(** Evaluate all bonds; returns the total bond energy. *)
val bonds : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all angles; returns the total angle energy. *)
val angles : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all dihedrals; returns the total dihedral energy. *)
val dihedrals : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all harmonic improper torsions. *)
val impropers : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** All bonded terms. Returns (bond_e, angle_e, dihedral_e + improper_e). *)
val all : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float * float * float

(** Count of bonded interactions, used by the machine performance model. *)
val term_count : Topology.t -> int
