lib/forcefield/bonded.mli: Mdsp_util Pbc Topology Vec3
