lib/forcefield/pair_interactions.mli: Bonded Mdsp_space Mdsp_util Nonbonded Pbc Topology Vec3
