lib/forcefield/water.mli: Mdsp_util Rng Topology Vec3
