lib/forcefield/topology.mli: Mdsp_space
