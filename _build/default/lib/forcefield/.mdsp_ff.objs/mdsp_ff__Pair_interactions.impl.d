lib/forcefield/pair_interactions.ml: Array Bonded Mdsp_space Mdsp_util Nonbonded Pbc Topology Units Vec3
