lib/forcefield/topology.ml: Array Hashtbl List Mdsp_space Printf
