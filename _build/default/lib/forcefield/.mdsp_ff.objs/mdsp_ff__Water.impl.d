lib/forcefield/water.ml: Float Mdsp_util Rng Topology Vec3
