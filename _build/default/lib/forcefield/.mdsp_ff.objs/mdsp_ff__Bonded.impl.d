lib/forcefield/bonded.ml: Array Float Mdsp_util Pbc Topology Vec3
