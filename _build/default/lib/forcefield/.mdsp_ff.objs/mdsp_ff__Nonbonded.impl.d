lib/forcefield/nonbonded.ml: Float List Mdsp_util Specfun
