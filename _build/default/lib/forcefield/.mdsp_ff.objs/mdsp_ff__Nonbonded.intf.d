lib/forcefield/nonbonded.mli:
