(** Rigid 3-site water model (TIP3P-class parameters).

    Waters are kept rigid by three distance constraints (O-H, O-H, H-H)
    solved by SHAKE/RATTLE, matching how the special-purpose machine treats
    them on its programmable cores. *)

open Mdsp_util

(** Geometry and charges of the model. *)
val o_mass : float
val h_mass : float
val o_charge : float
val h_charge : float
val oh_dist : float

(** The H-O-H angle, in radians. *)
val hoh_angle : float

val hh_dist : float

(** (epsilon, sigma) of the oxygen LJ site. *)
val o_lj : float * float

(** [add_molecule builder ~o_type ~h_type ~center ~orient] appends one rigid
    water (atoms O, H1, H2) oriented by the unit vector pair derived from
    [orient]; returns the oxygen's atom index. [o_type]/[h_type] are the LJ
    type ids to assign. *)
val add_molecule :
  Topology.Builder.t ->
  o_type:int -> h_type:int -> center:Vec3.t -> orient:Rng.t ->
  int * Vec3.t array

(** Number density of liquid water at ambient conditions, molecules / A^3. *)
val number_density : float

(** 4-site (TIP4P-class) parameters: the negative charge sits on a massless
    virtual M site on the HOH bisector. *)
module Tip4p : sig
  val o_lj : float * float
  val h_charge : float
  val m_charge : float

  (** O-M distance along the bisector, angstroms. *)
  val om_dist : float

  (** [add_molecule builder ~o_type ~h_type ~m_type ~center ~orient] appends
      one rigid 4-site water (O, H1, H2, M with M a virtual site); returns
      the oxygen index and the four initial positions. *)
  val add_molecule :
    Topology.Builder.t ->
    o_type:int -> h_type:int -> m_type:int -> center:Vec3.t -> orient:Rng.t ->
    int * Vec3.t array
end
