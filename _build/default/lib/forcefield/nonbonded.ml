open Mdsp_util

type form =
  | Lennard_jones of { epsilon : float; sigma : float }
  | Buckingham of { a : float; b : float; c : float }
  | Coulomb of { qq : float }
  | Coulomb_erfc of { qq : float; beta : float }
  | Gaussian_repulsion of { height : float; width : float }
  | Soft_core_lj of {
      epsilon : float;
      sigma : float;
      alpha : float;
      lambda : float;
    }
  | Morse of { d_e : float; a : float; r0 : float }
  | Yukawa of { a : float; kappa : float }
  | Lj_12_6_4 of { epsilon : float; sigma : float; c4 : float }
  | Sum of form list

let two_over_sqrt_pi = 2. /. sqrt Float.pi

let rec eval form r2 =
  match form with
  | Lennard_jones { epsilon; sigma } ->
      let sr2 = sigma *. sigma /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e = 4. *. epsilon *. (sr12 -. sr6) in
      let f_over_r = 24. *. epsilon *. ((2. *. sr12) -. sr6) /. r2 in
      (e, f_over_r)
  | Buckingham { a; b; c } ->
      let r = sqrt r2 in
      let expt = a *. exp (-.b *. r) in
      let r6 = r2 *. r2 *. r2 in
      let e = expt -. (c /. r6) in
      let minus_du_dr = (b *. expt) -. (6. *. c /. (r6 *. r)) in
      (e, minus_du_dr /. r)
  | Coulomb { qq } ->
      let r = sqrt r2 in
      let e = qq /. r in
      (e, e /. r2)
  | Coulomb_erfc { qq; beta } ->
      let r = sqrt r2 in
      let erfc_br = Specfun.erfc (beta *. r) in
      let e = qq *. erfc_br /. r in
      let gauss = two_over_sqrt_pi *. beta *. exp (-.beta *. beta *. r2) in
      let f_over_r = qq *. ((erfc_br /. r) +. gauss) /. r2 in
      (e, f_over_r)
  | Gaussian_repulsion { height; width } ->
      let w2 = width *. width in
      let e = height *. exp (-.r2 /. w2) in
      (e, 2. *. e /. w2)
  | Soft_core_lj { epsilon; sigma; alpha; lambda } ->
      let s6 = sigma ** 6. in
      let r6 = r2 *. r2 *. r2 in
      let d = (alpha *. s6 *. (1. -. lambda)) +. r6 in
      let s = s6 /. d in
      let e = 4. *. epsilon *. lambda *. ((s *. s) -. s) in
      (* f_over_r = -dU/dr / r; dU/dr = 4 eps lam (2s - 1) ds/dr,
         ds/dr = -6 r^5 s6 / d^2. *)
      let f_over_r =
        4. *. epsilon *. lambda *. ((2. *. s) -. 1.) *. 6. *. r2 *. r2 *. s6
        /. (d *. d)
      in
      (e, f_over_r)
  | Morse { d_e; a; r0 } ->
      let r = sqrt r2 in
      let ex = exp (-.a *. (r -. r0)) in
      let one_m = 1. -. ex in
      let e = (d_e *. one_m *. one_m) -. d_e in
      (* dU/dr = 2 D_e (1 - ex) * a * ex *)
      let du_dr = 2. *. d_e *. one_m *. a *. ex in
      (e, -.du_dr /. r)
  | Yukawa { a; kappa } ->
      let r = sqrt r2 in
      let e = a *. exp (-.kappa *. r) /. r in
      (* -dU/dr = e (kappa + 1/r) *)
      (e, e *. (kappa +. (1. /. r)) /. r)
  | Lj_12_6_4 { epsilon; sigma; c4 } ->
      let sr2 = sigma *. sigma /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e = (4. *. epsilon *. (sr12 -. sr6)) -. (c4 /. (r2 *. r2)) in
      let f_over_r =
        (24. *. epsilon *. ((2. *. sr12) -. sr6) /. r2)
        -. (4. *. c4 /. (r2 *. r2 *. r2))
      in
      (e, f_over_r)
  | Sum forms ->
      List.fold_left
        (fun (e, f) fm ->
          let e', f' = eval fm r2 in
          (e +. e', f +. f'))
        (0., 0.) forms

let energy form r2 = fst (eval form r2)
let shift_at form cutoff = energy form (cutoff *. cutoff)

type truncation = Truncate | Shift | Switch of { r_on : float }

let eval_truncated form ~cutoff ~trunc r2 =
  let rc2 = cutoff *. cutoff in
  if r2 >= rc2 then (0., 0.)
  else begin
    let e, f = eval form r2 in
    match trunc with
    | Truncate -> (e, f)
    | Shift -> (e -. shift_at form cutoff, f)
    | Switch { r_on } ->
        let ron2 = r_on *. r_on in
        if r2 <= ron2 then (e, f)
        else begin
          let a = rc2 -. r2 in
          let b = rc2 +. (2. *. r2) -. (3. *. ron2) in
          let denom = (rc2 -. ron2) ** 3. in
          let s = a *. a *. b /. denom in
          let ds_dr_over_r = 4. *. a *. (a -. b) /. denom in
          ((e *. s), (f *. s) -. (e *. ds_dr_over_r))
        end
  end

let lorentz_berthelot (eps_i, sigma_i) (eps_j, sigma_j) =
  Lennard_jones
    {
      epsilon = sqrt (eps_i *. eps_j);
      sigma = 0.5 *. (sigma_i +. sigma_j);
    }
