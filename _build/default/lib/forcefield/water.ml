open Mdsp_util

let o_mass = 15.9994
let h_mass = 1.008
let o_charge = -0.834
let h_charge = 0.417
let oh_dist = 0.9572
let hoh_angle = 104.52 *. Float.pi /. 180.
let hh_dist = 2. *. oh_dist *. sin (hoh_angle /. 2.)
let o_lj = (0.1521, 3.15066)
let number_density = 0.0334 (* molecules per cubic angstrom at 1 g/cm^3 *)

(* Shared frame builder: returns (o_pos, h1_pos, h2_pos, bisector unit). *)
let geometry ~center ~orient =
  let u = Rng.unit_vector orient in
  let v0 = Rng.unit_vector orient in
  let v = Vec3.sub v0 (Vec3.scale (Vec3.dot v0 u) u) in
  let v =
    if Vec3.norm v < 1e-6 then
      Vec3.normalize (Vec3.cross u (Vec3.make 1. 0. 0.))
    else Vec3.normalize v
  in
  let half = hoh_angle /. 2. in
  let h_dir sign =
    Vec3.add (Vec3.scale (cos half) u) (Vec3.scale (sign *. sin half) v)
  in
  ( center,
    Vec3.add center (Vec3.scale oh_dist (h_dir 1.)),
    Vec3.add center (Vec3.scale oh_dist (h_dir (-1.))),
    u )

let add_molecule b ~o_type ~h_type ~center ~orient =
  let o_pos, h1_pos, h2_pos, _ = geometry ~center ~orient in
  let o =
    Topology.Builder.add_atom b ~mass:o_mass ~charge:o_charge ~type_id:o_type
      ~name:"OW"
  in
  let h1 =
    Topology.Builder.add_atom b ~mass:h_mass ~charge:h_charge ~type_id:h_type
      ~name:"HW1"
  in
  let h2 =
    Topology.Builder.add_atom b ~mass:h_mass ~charge:h_charge ~type_id:h_type
      ~name:"HW2"
  in
  Topology.Builder.add_constraint b ~i:o ~j:h1 ~dist:oh_dist;
  Topology.Builder.add_constraint b ~i:o ~j:h2 ~dist:oh_dist;
  Topology.Builder.add_constraint b ~i:h1 ~j:h2 ~dist:hh_dist;
  (o, [| o_pos; h1_pos; h2_pos |])

module Tip4p = struct
  let o_lj = (0.155, 3.15365)
  let h_charge = 0.52
  let m_charge = -1.04
  let om_dist = 0.15

  let add_molecule b ~o_type ~h_type ~m_type ~center ~orient =
    let o_pos, h1_pos, h2_pos, bisector = geometry ~center ~orient in
    let o =
      Topology.Builder.add_atom b ~mass:o_mass ~charge:0. ~type_id:o_type
        ~name:"OW"
    in
    let h1 =
      Topology.Builder.add_atom b ~mass:h_mass ~charge:h_charge
        ~type_id:h_type ~name:"HW1"
    in
    let h2 =
      Topology.Builder.add_atom b ~mass:h_mass ~charge:h_charge
        ~type_id:h_type ~name:"HW2"
    in
    (* The virtual M site carries the negative charge. The placeholder mass
       is never used: the engine excludes virtual sites from integration. *)
    let m =
      Topology.Builder.add_atom b ~mass:1.0 ~charge:m_charge ~type_id:m_type
        ~name:"MW"
    in
    Topology.Builder.add_constraint b ~i:o ~j:h1 ~dist:oh_dist;
    Topology.Builder.add_constraint b ~i:o ~j:h2 ~dist:oh_dist;
    Topology.Builder.add_constraint b ~i:h1 ~j:h2 ~dist:hh_dist;
    (* Linear virtual-site weights placing M on the bisector at om_dist:
       with rigid geometry, |a (rH1 - rO) + a (rH2 - rO)| = om_dist when
       a = om_dist / (2 oh_dist cos(theta/2)). *)
    let a = om_dist /. (2. *. oh_dist *. cos (hoh_angle /. 2.)) in
    Topology.Builder.add_virtual_site b ~site:m
      ~parents:[| (o, 1. -. (2. *. a)); (h1, a); (h2, a) |];
    let m_pos = Vec3.add o_pos (Vec3.scale om_dist bisector) in
    (o, [| o_pos; h1_pos; h2_pos; m_pos |])
end
