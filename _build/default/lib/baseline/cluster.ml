open Mdsp_machine

type t = {
  name : string;
  n_nodes : int;
  pairs_per_second_node : float;
  flex_ops_per_second_node : float;
  node_bw_gb_s : float;
  message_latency_us : float;
  per_step_overhead_us : float;
}

let commodity ?(nodes = 64) () =
  {
    name = Printf.sprintf "commodity-%d" nodes;
    n_nodes = nodes;
    pairs_per_second_node = 5e8;
    flex_ops_per_second_node = 2e10;
    node_bw_gb_s = 5.0;
    message_latency_us = 1.5;
    per_step_overhead_us = 20.0;
  }

let step_time c (w : Perf.workload) =
  let nodes = float_of_int c.n_nodes in
  let pairs = Perf.pair_count w in
  let compute_s = pairs /. nodes /. c.pairs_per_second_node in
  let flex_ops =
    (float_of_int w.Perf.bonded_terms *. 60.)
    +. (float_of_int w.Perf.n_atoms *. 40.)
    +. (float_of_int w.Perf.n_constraints *. 50.)
    +. w.Perf.flex_ops_per_step
  in
  let flex_s = flex_ops /. nodes /. c.flex_ops_per_second_node in
  (* Halo exchange: surface atoms of each domain, two phases. *)
  let vol = float_of_int w.Perf.n_atoms /. w.Perf.density in
  let domain_edge = (vol /. nodes) ** (1. /. 3.) in
  let halo_atoms =
    w.Perf.density
    *. (((domain_edge +. (2. *. w.Perf.cutoff)) ** 3.)
       -. (domain_edge ** 3.))
  in
  let halo_bytes = halo_atoms *. 32. in
  let comm_s =
    (halo_bytes /. (c.node_bw_gb_s *. 1e9))
    +. (4. *. c.message_latency_us *. 1e-6)
  in
  (* PME all-to-all: latency-bound at scale. *)
  let fft_s =
    match w.Perf.fft_grid with
    | None -> 0.
    | Some (gx, gy, gz) ->
        let k = float_of_int (gx * gy * gz) in
        let compute =
          k /. nodes *. 60. /. c.flex_ops_per_second_node
        in
        let alltoall =
          (2. *. k /. nodes *. 16. /. (c.node_bw_gb_s *. 1e9))
          +. (2. *. sqrt nodes *. c.message_latency_us *. 1e-6)
        in
        compute +. alltoall
  in
  compute_s +. flex_s +. comm_s +. fft_s
  +. (c.per_step_overhead_us *. 1e-6)

let ns_per_day c w =
  let s = step_time c w in
  86400. /. s *. w.Perf.dt_fs *. 1e-6
