lib/baseline/cluster.ml: Mdsp_machine Perf Printf
