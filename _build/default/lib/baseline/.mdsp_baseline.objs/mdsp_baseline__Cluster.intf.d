lib/baseline/cluster.mli: Mdsp_machine
