lib/baseline/reference.mli: Mdsp_ff Mdsp_util Pbc Vec3
