lib/baseline/reference.ml: Array Float Mdsp_ff Mdsp_util Vec3
