open Mdsp_util

type result = {
  forces : Vec3.t array;
  pair_energy : float;
  bonded_energy : float;
  virial : float;
}

let compute (topo : Mdsp_ff.Topology.t) box positions ~evaluator =
  let n = Array.length positions in
  let acc = Mdsp_ff.Bonded.make_accum n in
  let eb, ea, ed = Mdsp_ff.Bonded.all box topo positions acc in
  let pair_energy =
    Mdsp_ff.Pair_interactions.compute_all_pairs
      ~exclusions:topo.Mdsp_ff.Topology.exclusions evaluator box positions acc
  in
  {
    forces = Array.copy acc.forces;
    pair_energy;
    bonded_energy = eb +. ea +. ed;
    virial = acc.virial;
  }

let max_force_error a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Reference.max_force_error: length mismatch";
  if n = 0 then 0.
  else begin
    let rms = ref 0. in
    for i = 0 to n - 1 do
      rms := !rms +. Vec3.norm2 a.(i)
    done;
    let rms = sqrt (!rms /. float_of_int n) in
    let scale = Float.max rms 1e-12 in
    let worst = ref 0. in
    for i = 0 to n - 1 do
      worst := Float.max !worst (Vec3.dist a.(i) b.(i))
    done;
    !worst /. scale
  end
