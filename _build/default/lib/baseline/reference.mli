(** Reference force computation — the correctness oracle.

    Computes forces and energies with the analytic evaluator over all pairs
    (O(N^2), exclusion-aware), bypassing neighbor lists and tables entirely.
    Machine-model results are validated against this in the E3 experiment
    and throughout the test suite. *)

open Mdsp_util

type result = {
  forces : Vec3.t array;
  pair_energy : float;
  bonded_energy : float;
  virial : float;
}

(** [compute topo box positions ~evaluator] evaluates bonded terms plus all
    non-excluded pairs with the given evaluator. *)
val compute :
  Mdsp_ff.Topology.t -> Pbc.t -> Vec3.t array ->
  evaluator:Mdsp_ff.Pair_interactions.evaluator -> result

(** Maximum per-atom force discrepancy between two force sets, normalized by
    the RMS force of [a] (a dimensionless relative error). *)
val max_force_error : Vec3.t array -> Vec3.t array -> float
