(** Commodity-cluster performance model — the comparison baseline.

    Models a conventional MPI cluster running well-optimized MD: per-node
    pair throughput, halo-exchange and PME all-to-all communication with
    microsecond-class latencies, and fixed per-step software overhead. Like
    the machine model, this is a transparent analytic model whose purpose is
    the *shape* of the comparison (who wins, roughly by how much, where
    scaling rolls over), not absolute agreement with any specific cluster.
    It consumes the same workload descriptor as the machine model
    ({!Mdsp_machine.Perf.workload}). *)

type t = {
  name : string;
  n_nodes : int;
  pairs_per_second_node : float;
      (** sustained nonbonded pair rate of one node, all force terms in *)
  flex_ops_per_second_node : float;  (** bonded/integration throughput *)
  node_bw_gb_s : float;  (** network bandwidth per node *)
  message_latency_us : float;  (** point-to-point latency *)
  per_step_overhead_us : float;  (** software overhead per step *)
}

(** A competitive CPU/GPU cluster of [n] nodes (default 64). *)
val commodity : ?nodes:int -> unit -> t

(** Step time in seconds for the given workload. *)
val step_time : t -> Mdsp_machine.Perf.workload -> float

val ns_per_day : t -> Mdsp_machine.Perf.workload -> float
