type t = float array

let eval c x =
  let acc = ref 0. in
  for i = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(i)
  done;
  !acc

let derivative c =
  let n = Array.length c in
  if n <= 1 then [| 0. |]
  else Array.init (n - 1) (fun i -> float_of_int (i + 1) *. c.(i + 1))

let hermite_cubic ~x0 ~x1 ~f0 ~f1 ~d0 ~d1 =
  let h = x1 -. x0 in
  if h <= 0. then invalid_arg "Poly.hermite_cubic: x1 must exceed x0";
  (* Standard Hermite basis in t = x - x0, t in [0, h]. *)
  let c0 = f0 in
  let c1 = d0 in
  let c2 = ((3. *. (f1 -. f0) /. h) -. (2. *. d0) -. d1) /. h in
  let c3 = ((2. *. (f0 -. f1) /. h) +. d0 +. d1) /. (h *. h) in
  [| c0; c1; c2; c3 |]

let solve a b =
  let n = Array.length b in
  let a = Array.map Array.copy a in
  let b = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivot. *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float a.(r).(col) > abs_float a.(!pivot).(col) then pivot := r
    done;
    if abs_float a.(!pivot).(col) < 1e-300 then
      failwith "Poly.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      if f <> 0. then begin
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      end
    done
  done;
  let x = Array.make n 0. in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

let least_squares ~degree xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Poly.least_squares: length mismatch";
  let m = degree + 1 in
  (* Normal equations A^T A c = A^T y with A the Vandermonde matrix. *)
  let ata = Array.make_matrix m m 0. in
  let aty = Array.make m 0. in
  for k = 0 to n - 1 do
    let pows = Array.make (2 * m) 1. in
    for p = 1 to (2 * m) - 1 do
      pows.(p) <- pows.(p - 1) *. xs.(k)
    done;
    for i = 0 to m - 1 do
      for j = 0 to m - 1 do
        ata.(i).(j) <- ata.(i).(j) +. pows.(i + j)
      done;
      aty.(i) <- aty.(i) +. (pows.(i) *. ys.(k))
    done
  done;
  solve ata aty

let chebyshev_nodes ~a ~b ~n =
  if n < 1 then invalid_arg "Poly.chebyshev_nodes: n must be positive";
  Array.init n (fun i ->
      let theta = Float.pi *. (float_of_int (2 * i) +. 1.) /. float_of_int (2 * n) in
      (0.5 *. (a +. b)) +. (0.5 *. (b -. a) *. cos theta))
