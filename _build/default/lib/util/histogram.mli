(** Fixed-width 1D and 2D histograms used by WHAM, metadynamics analysis, and
    temperature-distribution tests. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
val add : t -> float -> unit
val add_weighted : t -> float -> float -> unit

(** Number of in-range samples added (weights counted as their values in the
    weighted case). *)
val total : t -> float

(** Samples that fell outside the range. *)
val out_of_range : t -> int

val bins : t -> int
val counts : t -> float array

(** Center coordinate of bin [i]. *)
val center : t -> int -> float

(** Bin index for [x], or [None] if outside the range. *)
val index : t -> float -> int option

(** Probability density normalized so that sum(density * width) = 1. *)
val density : t -> float array

val bin_width : t -> float

module H2 : sig
  type t

  val create :
    xlo:float -> xhi:float -> xbins:int -> ylo:float -> yhi:float -> ybins:int -> t

  val add : t -> float -> float -> unit
  val counts : t -> float array array
  val xcenter : t -> int -> float
  val ycenter : t -> int -> float
end
