(** Polynomial utilities for the interpolation-table compiler.

    The table compiler fits piecewise cubic polynomials to radial functions;
    this module provides cubic Hermite construction, Horner evaluation, and a
    small dense linear solver for least-squares fits. *)

(** Coefficients in increasing degree: c.(0) + c.(1) x + ... *)
type t = float array

(** Horner evaluation. *)
val eval : t -> float -> float

(** Derivative polynomial. *)
val derivative : t -> t

(** [hermite_cubic ~x0 ~x1 ~f0 ~f1 ~d0 ~d1] is the unique cubic matching
    values [f0], [f1] and derivatives [d0], [d1] at [x0], [x1], expressed in
    the *local* variable [t = x - x0]. *)
val hermite_cubic :
  x0:float -> x1:float -> f0:float -> f1:float -> d0:float -> d1:float -> t

(** Gaussian elimination with partial pivoting; solves [a x = b] in place on
    copies. Raises [Failure] on a singular system. *)
val solve : float array array -> float array -> float array

(** [least_squares ~degree xs ys] fits a polynomial of the given degree by
    normal equations. *)
val least_squares : degree:int -> float array -> float array -> t

(** Chebyshev nodes of the first kind mapped onto [a, b]. *)
val chebyshev_nodes : a:float -> b:float -> n:int -> float array
