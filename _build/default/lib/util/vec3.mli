(** Three-dimensional vectors of floats.

    The workhorse value type of the whole code base. Vectors are immutable
    records; the compiler unboxes them in most hot paths. All angles are in
    radians. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val of_tuple : float * float * float -> t
val to_tuple : t -> float * float * float

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

(** [axpy a x y] is [a*x + y]. *)
val axpy : float -> t -> t -> t

val dot : t -> t -> float
val cross : t -> t -> t
val norm2 : t -> float
val norm : t -> float

(** [dist2 a b] is the squared Euclidean distance between [a] and [b]. *)
val dist2 : t -> t -> float

val dist : t -> t -> float

(** [normalize v] is the unit vector along [v]. Raises [Invalid_argument] on
    the zero vector. *)
val normalize : t -> t

(** Component-wise product. *)
val mul : t -> t -> t

(** Component-wise map. *)
val map : (float -> float) -> t -> t

(** Component-wise binary map. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** Largest absolute component. *)
val inf_norm : t -> float

(** [angle a b] is the angle between the two vectors, in [0, pi]. *)
val angle : t -> t -> float

(** Approximate equality with absolute tolerance [eps] on each component. *)
val equal_eps : eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Infix aliases: [a +| b], [a -| b], [s *| v]. *)
module Infix : sig
  val ( +| ) : t -> t -> t
  val ( -| ) : t -> t -> t
  val ( *| ) : float -> t -> t
end
