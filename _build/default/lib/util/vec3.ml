type t = { x : float; y : float; z : float }

let zero = { x = 0.; y = 0.; z = 0. }
let make x y z = { x; y; z }
let of_tuple (x, y, z) = { x; y; z }
let to_tuple { x; y; z } = (x, y, z)
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }

let axpy a x y =
  { x = (a *. x.x) +. y.x; y = (a *. x.y) +. y.y; z = (a *. x.z) +. y.z }

let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let norm2 a = dot a a
let norm a = sqrt (norm2 a)

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y and dz = a.z -. b.z in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

let dist a b = sqrt (dist2 a b)

let normalize v =
  let n = norm v in
  if n = 0. then invalid_arg "Vec3.normalize: zero vector";
  scale (1. /. n) v

let mul a b = { x = a.x *. b.x; y = a.y *. b.y; z = a.z *. b.z }
let map f a = { x = f a.x; y = f a.y; z = f a.z }
let map2 f a b = { x = f a.x b.x; y = f a.y b.y; z = f a.z b.z }
let inf_norm a = max (abs_float a.x) (max (abs_float a.y) (abs_float a.z))

let angle a b =
  let c = dot a b /. (norm a *. norm b) in
  (* Clamp against round-off outside [-1, 1]. *)
  acos (max (-1.) (min 1. c))

let equal_eps ~eps a b =
  abs_float (a.x -. b.x) <= eps
  && abs_float (a.y -. b.y) <= eps
  && abs_float (a.z -. b.z) <= eps

let pp ppf { x; y; z } = Format.fprintf ppf "(%g, %g, %g)" x y z
let to_string v = Format.asprintf "%a" pp v

module Infix = struct
  let ( +| ) = add
  let ( -| ) = sub
  let ( *| ) = scale
end
