(** ASCII table rendering for the benchmark harness. Every experiment prints
    its rows through this module so the output matches a paper table. *)

type align = Left | Right

type t

(** [create ~title ~columns] starts a table. Each column is (header, align). *)
val create : title:string -> columns:(string * align) list -> t

(** Append a row; must have as many cells as there are columns. *)
val row : t -> string list -> unit

(** Convenience: format floats with [%g]-style precision. *)
val cell_f : ?prec:int -> float -> string

val cell_i : int -> string

(** Render to a string, with a ruled header and the title on top. *)
val render : t -> string

(** Render directly to stdout. *)
val print : t -> unit
