let k_b = 0.0019872041
let coulomb = 332.0637
let time_unit_fs = 48.88821
let fs t = t /. time_unit_fs
let to_fs t = t *. time_unit_fs
let to_ns t = t *. time_unit_fs *. 1e-6

(* 1 kcal/mol/A^3 = 68568.4 atm. *)
let pressure_to_atm p = p *. 68568.4
let kt temp = k_b *. temp
