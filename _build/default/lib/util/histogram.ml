type t = {
  lo : float;
  hi : float;
  nbins : int;
  width : float;
  counts : float array;
  mutable total : float;
  mutable oor : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    nbins = bins;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0.;
    total = 0.;
    oor = 0;
  }

let index t x =
  if x < t.lo || x >= t.hi then None
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    Some (min i (t.nbins - 1))
  end

let add_weighted t x w =
  match index t x with
  | Some i ->
      t.counts.(i) <- t.counts.(i) +. w;
      t.total <- t.total +. w
  | None -> t.oor <- t.oor + 1

let add t x = add_weighted t x 1.
let total t = t.total
let out_of_range t = t.oor
let bins t = t.nbins
let counts t = Array.copy t.counts
let center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)
let bin_width t = t.width

let density t =
  let norm = t.total *. t.width in
  if norm = 0. then Array.make t.nbins 0.
  else Array.map (fun c -> c /. norm) t.counts

module H2 = struct
  type t = {
    xlo : float;
    xw : float;
    xbins : int;
    ylo : float;
    yw : float;
    ybins : int;
    counts : float array array;
  }

  let create ~xlo ~xhi ~xbins ~ylo ~yhi ~ybins =
    if xbins <= 0 || ybins <= 0 then invalid_arg "Histogram.H2.create: bins";
    if xhi <= xlo || yhi <= ylo then invalid_arg "Histogram.H2.create: range";
    {
      xlo;
      xw = (xhi -. xlo) /. float_of_int xbins;
      xbins;
      ylo;
      yw = (yhi -. ylo) /. float_of_int ybins;
      ybins;
      counts = Array.make_matrix xbins ybins 0.;
    }

  let add t x y =
    let i = int_of_float ((x -. t.xlo) /. t.xw) in
    let j = int_of_float ((y -. t.ylo) /. t.yw) in
    if i >= 0 && i < t.xbins && j >= 0 && j < t.ybins then
      t.counts.(i).(j) <- t.counts.(i).(j) +. 1.

  let counts t = Array.map Array.copy t.counts
  let xcenter t i = t.xlo +. ((float_of_int i +. 0.5) *. t.xw)
  let ycenter t j = t.ylo +. ((float_of_int j +. 0.5) *. t.yw)
end
