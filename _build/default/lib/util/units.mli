(** Internal unit system and physical constants.

    The code base uses the conventional MD "academic" unit system:
    - length: angstrom (A)
    - energy: kcal/mol
    - mass: atomic mass unit (amu, g/mol)
    - charge: elementary charge (e)
    - temperature: kelvin

    The derived time unit is then [t0 = sqrt(amu * A^2 / (kcal/mol))]
    ≈ 48.8882 fs; all user-facing APIs take femtoseconds and convert. *)

(** Boltzmann constant, kcal/(mol K). *)
val k_b : float

(** Coulomb constant e²/(4 pi eps0) in kcal·A/mol. *)
val coulomb : float

(** Internal time unit expressed in femtoseconds. *)
val time_unit_fs : float

(** Convert femtoseconds to internal time. *)
val fs : float -> float

(** Convert internal time to femtoseconds. *)
val to_fs : float -> float

(** Convert internal time to nanoseconds. *)
val to_ns : float -> float

(** Pressure conversion: internal (kcal/mol/A^3) to atmospheres. *)
val pressure_to_atm : float -> float

(** kT at the given temperature, kcal/mol. *)
val kt : float -> float
