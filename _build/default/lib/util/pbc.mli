(** Orthorhombic periodic boundary conditions.

    The machine model, the force fields, and the neighbor search all agree on
    this representation: an orthorhombic box with edge lengths [lx, ly, lz]
    and coordinates wrapped into [0, l). *)

type t = { lx : float; ly : float; lz : float }

val cubic : float -> t
val make : lx:float -> ly:float -> lz:float -> t
val volume : t -> float

(** Scale all edges by a factor (used by barostats). *)
val scale : t -> float -> t

(** Wrap a position into the primary cell [0, l)^3. *)
val wrap : t -> Vec3.t -> Vec3.t

(** Minimum-image displacement [a - b]. Correct for separations up to half
    the shortest edge. *)
val min_image : t -> Vec3.t -> Vec3.t -> Vec3.t

(** Minimum-image squared distance. *)
val dist2 : t -> Vec3.t -> Vec3.t -> float

val dist : t -> Vec3.t -> Vec3.t -> float

(** Shortest box edge. *)
val min_edge : t -> float

(** Fractional coordinates in [0,1)^3 of a wrapped position. *)
val to_fractional : t -> Vec3.t -> Vec3.t

val of_fractional : t -> Vec3.t -> Vec3.t
val pp : Format.formatter -> t -> unit
