let erfc x =
  (* Rational Chebyshev approximation; |error| <= 1.2e-7 everywhere. *)
  let z = abs_float x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

let erf x = 1. -. erfc x

let gamma_ln x =
  if x <= 0. then invalid_arg "Specfun.gamma_ln: requires x > 0";
  let cof =
    [|
      76.18009172947146;
      -86.50532032941677;
      24.01409824083091;
      -1.231739572450155;
      0.1208650973866179e-2;
      -0.5395239384953e-5;
    |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.;
      ser := !ser +. (c /. !y))
    cof;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let sinc x = if abs_float x < 1e-8 then 1. -. (x *. x /. 6.) else sin x /. x
