(** Online and batch statistics used by the analysis layer and the tests. *)

(** Welford online accumulator for mean and variance. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  (** Unbiased sample variance; 0 for fewer than two samples. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

(** [autocorrelation xs k] is the lag-[k] normalized autocorrelation. *)
val autocorrelation : float array -> int -> float

(** Integrated autocorrelation time by windowed summation (Sokal window
    [c = 6]). At least a handful of correlation times of data is required for
    a meaningful answer. *)
val integrated_autocorrelation_time : float array -> float

(** Block-averaging standard error of the mean with the given block size. *)
val block_standard_error : block:int -> float array -> float

(** Simple linear regression; returns [(slope, intercept)]. *)
val linear_fit : float array -> float array -> float * float

(** Weighted histogram-free running drift: max |x_i - x_0| / |x_0|. *)
val max_relative_drift : float array -> float
