type align = Left | Right

type t = {
  title : string;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table_text.create: no columns";
  {
    title;
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let row t cells =
  let cells = Array.of_list cells in
  if Array.length cells <> Array.length t.headers then
    invalid_arg "Table_text.row: cell count mismatch";
  t.rows <- cells :: t.rows

let cell_f ?(prec = 4) x = Printf.sprintf "%.*g" prec x
let cell_i i = string_of_int i

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun r ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    rows;
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let line sep cells =
    Buffer.add_string buf "| ";
    Array.iteri
      (fun i c ->
        Buffer.add_string buf c;
        if i < ncols - 1 then Buffer.add_string buf " | ")
      cells;
    Buffer.add_string buf " |";
    Buffer.add_char buf '\n';
    if sep then begin
      Buffer.add_char buf '|';
      Array.iter
        (fun w ->
          Buffer.add_string buf (String.make (w + 2) '-');
          Buffer.add_char buf '|')
        widths;
      Buffer.add_char buf '\n'
    end
  in
  line true (Array.mapi (fun i h -> pad Left widths.(i) h) t.headers);
  List.iter
    (fun r -> line false (Array.mapi (fun i c -> pad t.aligns.(i) widths.(i) c) r))
    rows;
  Buffer.contents buf

let print t = print_string (render t)
