module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.lo
  let max t = t.hi
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    s /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let autocorrelation xs k =
  let n = Array.length xs in
  if k < 0 || k >= n then invalid_arg "Stats.autocorrelation: bad lag";
  let m = mean xs in
  let denom = ref 0. and num = ref 0. in
  for i = 0 to n - 1 do
    denom := !denom +. ((xs.(i) -. m) ** 2.)
  done;
  for i = 0 to n - 1 - k do
    num := !num +. ((xs.(i) -. m) *. (xs.(i + k) -. m))
  done;
  if !denom = 0. then 0. else !num /. !denom

let integrated_autocorrelation_time xs =
  let n = Array.length xs in
  if n < 4 then 1.
  else begin
    let tau = ref 0.5 in
    let k = ref 1 in
    let continue = ref true in
    (* Sokal's adaptive window: stop once k >= 6 tau. *)
    while !continue && !k < n / 2 do
      tau := !tau +. autocorrelation xs !k;
      if float_of_int !k >= 6. *. !tau then continue := false;
      incr k
    done;
    Float.max 1. (2. *. !tau)
  end

let block_standard_error ~block xs =
  let n = Array.length xs in
  if block <= 0 || block > n then
    invalid_arg "Stats.block_standard_error: bad block size";
  let nb = n / block in
  if nb < 2 then invalid_arg "Stats.block_standard_error: too few blocks";
  let means =
    Array.init nb (fun b ->
        let s = ref 0. in
        for i = b * block to ((b + 1) * block) - 1 do
          s := !s +. xs.(i)
        done;
        !s /. float_of_int block)
  in
  stddev means /. sqrt (float_of_int nb)

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys || n < 2 then
    invalid_arg "Stats.linear_fit: need two arrays of equal length >= 2";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) ** 2.)
  done;
  if !sxx = 0. then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let max_relative_drift xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.max_relative_drift: empty";
  let x0 = xs.(0) in
  let scale = Float.max (abs_float x0) 1e-12 in
  Array.fold_left (fun acc x -> Float.max acc (abs_float (x -. x0) /. scale)) 0. xs
