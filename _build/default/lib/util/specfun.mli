(** Special functions needed by the force-field and long-range machinery. *)

(** Complementary error function, absolute error below 1.2e-7 (Numerical
    Recipes rational approximation, adequate for table generation where the
    table-fit error dominates). *)
val erfc : float -> float

(** Error function, [erf x = 1 - erfc x]. *)
val erf : float -> float

(** [gamma_ln x] is log(Gamma(x)) for x > 0 (Lanczos). *)
val gamma_ln : float -> float

(** Modified sinc: sin(x)/x with the correct limit at 0. *)
val sinc : float -> float
