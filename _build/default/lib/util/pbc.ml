type t = { lx : float; ly : float; lz : float }

let make ~lx ~ly ~lz =
  if lx <= 0. || ly <= 0. || lz <= 0. then
    invalid_arg "Pbc.make: edges must be positive";
  { lx; ly; lz }

let cubic l = make ~lx:l ~ly:l ~lz:l
let volume b = b.lx *. b.ly *. b.lz
let scale b f = make ~lx:(b.lx *. f) ~ly:(b.ly *. f) ~lz:(b.lz *. f)

let wrap1 l x =
  let x = Float.rem x l in
  if x < 0. then x +. l else x

let wrap b (v : Vec3.t) =
  Vec3.make (wrap1 b.lx v.x) (wrap1 b.ly v.y) (wrap1 b.lz v.z)

let mi1 l d = d -. (l *. Float.round (d /. l))

let min_image b (a : Vec3.t) (c : Vec3.t) =
  Vec3.make (mi1 b.lx (a.x -. c.x)) (mi1 b.ly (a.y -. c.y))
    (mi1 b.lz (a.z -. c.z))

let dist2 b a c =
  let d = min_image b a c in
  Vec3.norm2 d

let dist b a c = sqrt (dist2 b a c)
let min_edge b = Float.min b.lx (Float.min b.ly b.lz)

let to_fractional b (v : Vec3.t) =
  let w = wrap b v in
  Vec3.make (w.x /. b.lx) (w.y /. b.ly) (w.z /. b.lz)

let of_fractional b (f : Vec3.t) =
  Vec3.make (f.x *. b.lx) (f.y *. b.ly) (f.z *. b.lz)

let pp ppf b = Format.fprintf ppf "box(%g x %g x %g)" b.lx b.ly b.lz
