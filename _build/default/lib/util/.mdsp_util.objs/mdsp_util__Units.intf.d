lib/util/units.mli:
