lib/util/units.ml:
