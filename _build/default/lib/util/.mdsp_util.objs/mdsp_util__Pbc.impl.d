lib/util/pbc.ml: Float Format Vec3
