lib/util/histogram.mli:
