lib/util/table_text.ml: Array Buffer List Printf String
