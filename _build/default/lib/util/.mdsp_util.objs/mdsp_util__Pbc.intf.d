lib/util/pbc.mli: Format Vec3
