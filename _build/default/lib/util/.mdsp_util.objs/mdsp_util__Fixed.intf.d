lib/util/fixed.mli:
