lib/util/stats.mli:
