lib/util/specfun.mli:
