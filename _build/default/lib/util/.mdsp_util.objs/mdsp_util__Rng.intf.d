lib/util/rng.mli: Vec3
