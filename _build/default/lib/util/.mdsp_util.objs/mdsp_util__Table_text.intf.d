lib/util/table_text.mli:
