lib/util/poly.mli:
