lib/util/vec3.ml: Format
