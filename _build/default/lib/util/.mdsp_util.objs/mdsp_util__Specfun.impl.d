lib/util/specfun.ml: Array
