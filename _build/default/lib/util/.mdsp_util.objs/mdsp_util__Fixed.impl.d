lib/util/fixed.ml: Array Float Int64
