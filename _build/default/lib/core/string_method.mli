(** String method with swarms of trajectories (Pan, Sezer & Roux).

    Finds the most probable transition pathway between two basins in a
    collective-variable space. Each iteration: (1) equilibrate each image
    under harmonic CV restraints, (2) launch a swarm of short unbiased
    trajectories per image and average the CV drift, (3) move interior
    images by the mean drift and reparametrize the string to equal arc
    length. Converges when images stop moving. *)

type t

(** [start]/[stop] are the endpoint images in CV space (held fixed). The
    engine's current state seeds every image. *)
val create :
  cvs:Cv.t array ->
  start:float array ->
  stop:float array ->
  n_images:int ->
  engine:Mdsp_md.Engine.t ->
  k:float ->
  equil_steps:int ->
  n_swarms:int ->
  swarm_steps:int ->
  seed:int ->
  t

(** One iteration; returns the max image displacement (CV units). *)
val iterate : t -> float

(** Iterate until displacement < [tol] (default 0.05) or [max_iterations]
    (default 50); returns the final displacement. *)
val converge : ?tol:float -> ?max_iterations:int -> t -> float

(** Current images, one CV vector per image. *)
val images : t -> float array array

val iterations : t -> int

(** Image snapshots after each iteration, oldest first. *)
val history : t -> float array array list

(** Equal-arc-length reparametrization (exposed for tests). *)
val reparametrize : float array array -> float array array

val flex_ops_per_step : t -> float
