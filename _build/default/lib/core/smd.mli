(** Steered molecular dynamics: a harmonic restraint whose center moves at
    constant speed, dragging the system along a collective variable. The
    accumulated nonequilibrium work is recorded (usable with the Jarzynski
    equality). *)

type t

(** [speed_per_step] is the center displacement per MD step (CV units). *)
val create :
  ?record_stride:int ->
  cv:Cv.t -> k:float -> start:float -> speed_per_step:float -> unit -> t

val attach : t -> Mdsp_md.Engine.t -> unit

(** Accumulated pulling work, kcal/mol. *)
val work : t -> float

val center : t -> float

(** Recorded (center, cv, work) triples in time order. *)
val trace : t -> (float * float * float) list

val flex_ops_per_step : t -> float
