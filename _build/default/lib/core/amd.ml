open Mdsp_util

type t = {
  threshold : float;  (** boost below this potential energy *)
  alpha : float;  (** smoothing parameter, kcal/mol *)
  mutable last_boost : float;
  mutable boost_samples : float list;
}

let create ~threshold ~alpha =
  if alpha <= 0. then invalid_arg "Amd.create: alpha must be positive";
  { threshold; alpha; last_boost = 0.; boost_samples = [] }

(* dV(V) = (E - V)^2 / (alpha + E - V) for V < E, else 0.
   d(dV)/dV = -(E - V)(E - V + 2 alpha) / (alpha + E - V)^2, so the force
   scale (1 + d(dV)/dV) stays in (0, 1]. *)
let boost t v =
  if v >= t.threshold then (0., 1.)
  else begin
    let d = t.threshold -. v in
    let dv = d *. d /. (t.alpha +. d) in
    let ddv_dv = -.d *. (d +. (2. *. t.alpha)) /. ((t.alpha +. d) ** 2.) in
    (dv, 1. +. ddv_dv)
  end

let transform t =
  {
    Mdsp_md.Force_calc.tr_name = "amd";
    tr_apply =
      (fun _box _positions acc v ->
        let dv, scale = boost t v in
        t.last_boost <- dv;
        t.boost_samples <- dv :: t.boost_samples;
        if scale <> 1. then begin
          let f = acc.Mdsp_ff.Bonded.forces in
          for i = 0 to Array.length f - 1 do
            f.(i) <- Vec3.scale scale f.(i)
          done;
          acc.Mdsp_ff.Bonded.virial <- acc.Mdsp_ff.Bonded.virial *. scale
        end;
        dv);
  }

let attach t eng =
  Mdsp_md.Force_calc.set_transform (Mdsp_md.Engine.force_calc eng)
    (Some (transform t));
  Mdsp_md.Engine.refresh_forces eng

let detach eng =
  Mdsp_md.Force_calc.set_transform (Mdsp_md.Engine.force_calc eng) None;
  Mdsp_md.Engine.refresh_forces eng

let last_boost t = t.last_boost
let boost_samples t = Array.of_list (List.rev t.boost_samples)

(* Reweighting factors exp(beta dV) for recovering canonical averages. *)
let reweighting_factors t ~temp =
  let beta = 1. /. Units.kt temp in
  Array.map (fun dv -> exp (beta *. dv)) (boost_samples t)

let flex_ops_per_step _ ~n_atoms = float_of_int n_atoms *. 3.
