type t = {
  cv : Cv.t;
  k : float;
  mutable center : float;
  speed : float; (* CV units per step *)
  mutable work : float;
  mutable trace : (float * float * float) list; (* (center, cv, work), reversed *)
  record_stride : int;
}

let create ?(record_stride = 10) ~cv ~k ~start ~speed_per_step () =
  {
    cv;
    k;
    center = start;
    speed = speed_per_step;
    work = 0.;
    trace = [];
    record_stride;
  }

let bias t =
  Cv.harmonic_bias ~name:"smd" ~cv:t.cv ~k:t.k ~center:(fun () -> t.center)

let attach t eng =
  Mdsp_md.Force_calc.add_bias (Mdsp_md.Engine.force_calc eng) (bias t);
  Mdsp_md.Engine.add_post_step eng ~name:"smd" (fun eng ->
      let st = Mdsp_md.Engine.state eng in
      let s = t.cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions in
      (* Pulling work: dW = dU/dc * dc = -2k (s - c) dc. *)
      let dc = t.speed in
      t.work <- t.work -. (2. *. t.k *. (s -. t.center) *. dc);
      t.center <- t.center +. dc;
      if Mdsp_md.Engine.steps_done eng mod t.record_stride = 0 then
        t.trace <- (t.center, s, t.work) :: t.trace)

let work t = t.work
let center t = t.center
let trace t = List.rev t.trace
let flex_ops_per_step t = t.cv.Cv.flex_ops +. 20.
