lib/core/table.mli: Mdsp_ff Mdsp_machine
