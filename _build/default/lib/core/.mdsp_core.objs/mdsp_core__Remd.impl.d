lib/core/remd.ml: Array Fun Mdsp_md Mdsp_util Rng Units
