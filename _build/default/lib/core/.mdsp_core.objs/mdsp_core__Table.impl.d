lib/core/table.ml: Array Float Mdsp_ff Mdsp_machine Mdsp_util Option Poly
