lib/core/amd.ml: Array List Mdsp_ff Mdsp_md Mdsp_util Units Vec3
