lib/core/widom.mli: Mdsp_md
