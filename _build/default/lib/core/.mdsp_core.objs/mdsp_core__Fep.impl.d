lib/core/fep.ml: Array List Mdsp_analysis Mdsp_ff Mdsp_machine Mdsp_md Mdsp_space Mdsp_util Pbc Table Units
