lib/core/metadynamics2.mli: Cv Mdsp_md
