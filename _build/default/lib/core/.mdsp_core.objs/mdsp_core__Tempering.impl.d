lib/core/tempering.ml: Array Float Mdsp_md Mdsp_util Rng Units
