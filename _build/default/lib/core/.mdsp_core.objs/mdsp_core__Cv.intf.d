lib/core/cv.mli: Mdsp_md Mdsp_util Pbc Vec3
