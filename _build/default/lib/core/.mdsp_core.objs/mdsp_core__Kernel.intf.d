lib/core/kernel.mli: Mdsp_md Mdsp_util Vec3
