lib/core/metadynamics.mli: Cv Mdsp_md
