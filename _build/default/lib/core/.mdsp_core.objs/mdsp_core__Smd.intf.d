lib/core/smd.mli: Cv Mdsp_md
