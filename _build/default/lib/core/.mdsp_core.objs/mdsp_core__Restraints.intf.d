lib/core/restraints.mli: Kernel Mdsp_md Mdsp_util Vec3
