lib/core/tempering.mli: Mdsp_md
