lib/core/tamd.mli: Cv Mdsp_md
