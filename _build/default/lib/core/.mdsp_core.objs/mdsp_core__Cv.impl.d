lib/core/cv.ml: Array Float List Mdsp_ff Mdsp_md Mdsp_util Pbc Printf Vec3
