lib/core/tamd.ml: Cv List Mdsp_md Mdsp_util Rng Units
