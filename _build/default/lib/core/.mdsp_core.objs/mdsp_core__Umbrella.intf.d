lib/core/umbrella.mli: Cv Mdsp_analysis Mdsp_md
