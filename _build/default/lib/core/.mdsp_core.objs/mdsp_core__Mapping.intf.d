lib/core/mapping.mli: Amd Fep Kernel Mdsp_machine Metadynamics Remd Smd Tamd Tempering
