lib/core/umbrella.ml: Array Cv List Mdsp_analysis Mdsp_md
