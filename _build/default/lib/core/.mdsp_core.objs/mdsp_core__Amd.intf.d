lib/core/amd.mli: Mdsp_md
