lib/core/smd.ml: Cv List Mdsp_md
