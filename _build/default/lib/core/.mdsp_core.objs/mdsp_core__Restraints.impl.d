lib/core/restraints.ml: Cv Kernel Mdsp_md Mdsp_util Vec3
