lib/core/kernel.ml: Array Float Hashtbl List Mdsp_ff Mdsp_md Mdsp_util Option Pbc Printf Stdlib Vec3
