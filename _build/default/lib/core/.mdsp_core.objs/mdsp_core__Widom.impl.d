lib/core/widom.ml: Array Mdsp_analysis Mdsp_ff Mdsp_md Mdsp_util Pbc Rng Vec3
