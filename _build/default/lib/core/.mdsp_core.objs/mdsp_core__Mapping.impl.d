lib/core/mapping.ml: Amd Fep Kernel List Mdsp_machine Metadynamics Perf Printf Remd Smd Tamd Tempering
