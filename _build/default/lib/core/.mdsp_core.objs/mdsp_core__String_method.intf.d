lib/core/string_method.mli: Cv Mdsp_md
