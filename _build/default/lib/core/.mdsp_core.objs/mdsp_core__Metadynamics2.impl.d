lib/core/metadynamics2.ml: Array Cv List Mdsp_ff Mdsp_md Mdsp_util Units Vec3
