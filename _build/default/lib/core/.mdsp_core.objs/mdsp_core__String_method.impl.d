lib/core/string_method.ml: Array Cv Float List Mdsp_md Mdsp_util Printf Rng
