lib/core/remd.mli: Mdsp_md
