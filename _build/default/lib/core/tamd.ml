open Mdsp_util

type t = {
  cv : Cv.t;
  k : float;  (** coupling spring (energy per CV unit squared) *)
  mutable s : float;  (** extended variable *)
  gamma : float;  (** friction of the extended variable, per step *)
  s_temp : float;  (** temperature of the extended variable *)
  mutable trace : float list;
  record_stride : int;
  rng : Rng.t;
}

let create ?(record_stride = 10) ~cv ~k ~s0 ~gamma ~s_temp ~seed () =
  if k <= 0. then invalid_arg "Tamd.create: k must be positive";
  if gamma <= 0. || gamma > 1. then
    invalid_arg "Tamd.create: gamma must be in (0, 1] (per-step mobility)";
  {
    cv;
    k;
    s = s0;
    gamma;
    s_temp;
    trace = [];
    record_stride;
    rng = Rng.create seed;
  }

let bias t =
  Cv.harmonic_bias ~name:"tamd" ~cv:t.cv ~k:t.k ~center:(fun () -> t.s)

(* Overdamped (Brownian) dynamics of the extended variable at the elevated
   temperature: ds = -mobility dU/ds + sqrt(2 kT_s mobility) xi, with
   dU/ds = -2k (z - s). The per-step mobility is gamma. *)
let hook t eng =
  let st = Mdsp_md.Engine.state eng in
  let z = t.cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions in
  let du_ds = -2. *. t.k *. (z -. t.s) in
  let kt = Units.kt t.s_temp in
  let noise = sqrt (2. *. kt *. t.gamma /. (2. *. t.k)) *. Rng.gaussian t.rng in
  t.s <- t.s -. (t.gamma /. (2. *. t.k) *. du_ds) +. noise;
  if Mdsp_md.Engine.steps_done eng mod t.record_stride = 0 then
    t.trace <- t.s :: t.trace

let attach t eng =
  Mdsp_md.Force_calc.add_bias (Mdsp_md.Engine.force_calc eng) (bias t);
  Mdsp_md.Engine.add_post_step eng ~name:"tamd" (hook t)

let s_value t = t.s
let trace t = List.rev t.trace
let flex_ops_per_step t = t.cv.Cv.flex_ops +. 40.
