open Mdsp_util

type t = {
  engines : Mdsp_md.Engine.t array;
  temps : float array;
  stride : int;
  rng : Rng.t;
  mutable sweep : int;
  attempts : int array;  (** per neighbor pair (i, i+1) *)
  accepts : int array;
  replica_of_config : int array;
      (** tracks which rung each initial configuration currently occupies *)
}

let create ~engines ~temps ~stride ~seed =
  let m = Array.length engines in
  if m < 2 || Array.length temps <> m then
    invalid_arg "Remd.create: need matching engines and temps (>= 2)";
  Array.iteri (fun i e -> Mdsp_md.Engine.set_temperature e temps.(i)) engines;
  {
    engines;
    temps;
    stride;
    rng = Rng.create seed;
    sweep = 0;
    attempts = Array.make (m - 1) 0;
    accepts = Array.make (m - 1) 0;
    replica_of_config = Array.init m Fun.id;
  }

let attempt_pair t i =
  let e_lo = t.engines.(i) and e_hi = t.engines.(i + 1) in
  let u_lo = Mdsp_md.Engine.potential_energy e_lo in
  let u_hi = Mdsp_md.Engine.potential_energy e_hi in
  let beta_lo = 1. /. Units.kt t.temps.(i) in
  let beta_hi = 1. /. Units.kt t.temps.(i + 1) in
  let log_p = (beta_lo -. beta_hi) *. (u_lo -. u_hi) in
  t.attempts.(i) <- t.attempts.(i) + 1;
  if log_p >= 0. || Rng.uniform t.rng < exp log_p then begin
    t.accepts.(i) <- t.accepts.(i) + 1;
    (* Swap configurations (positions + velocities), keeping each engine
       pinned to its rung; rescale velocities to the new temperature. *)
    let st_lo = Mdsp_md.Engine.state e_lo in
    let st_hi = Mdsp_md.Engine.state e_hi in
    let tmp = Mdsp_md.State.copy st_lo in
    Mdsp_md.State.blit ~src:st_hi ~dst:st_lo;
    Mdsp_md.State.blit ~src:tmp ~dst:st_hi;
    let f = sqrt (t.temps.(i) /. t.temps.(i + 1)) in
    Mdsp_md.State.scale_velocities st_lo f;
    Mdsp_md.State.scale_velocities st_hi (1. /. f);
    Mdsp_md.Engine.refresh_forces e_lo;
    Mdsp_md.Engine.refresh_forces e_hi;
    (* Track the walk of the configurations across rungs. *)
    let m = Array.length t.replica_of_config in
    for c = 0 to m - 1 do
      if t.replica_of_config.(c) = i then t.replica_of_config.(c) <- i + 1
      else if t.replica_of_config.(c) = i + 1 then t.replica_of_config.(c) <- i
    done
  end

let run t ~sweeps =
  for _ = 1 to sweeps do
    Array.iter (fun e -> Mdsp_md.Engine.run e t.stride) t.engines;
    (* Alternate even/odd neighbor pairs each sweep. *)
    let start = t.sweep mod 2 in
    let i = ref start in
    while !i < Array.length t.engines - 1 do
      attempt_pair t !i;
      i := !i + 2
    done;
    t.sweep <- t.sweep + 1
  done

let acceptance t =
  Array.init
    (Array.length t.attempts)
    (fun i ->
      if t.attempts.(i) = 0 then 0.
      else float_of_int t.accepts.(i) /. float_of_int t.attempts.(i))

let engines t = t.engines
let replica_of_config t = Array.copy t.replica_of_config

(* Machine mapping: each replica occupies a machine partition; an exchange
   is two scalar energies plus a decision broadcast, then a configuration
   swap is avoided by swapping temperatures in the real implementation —
   we charge the conservative configuration-swap bytes. *)
let method_bytes_per_step t ~n_atoms =
  float_of_int (n_atoms * 24) /. float_of_int t.stride
