(** Accelerated MD (boost potential).

    When the potential energy falls below a threshold E, the bias
    [dV = (E - V)^2 / (alpha + E - V)] is added, flattening basins and
    accelerating barrier crossing; forces are scaled by [1 + d(dV)/dV],
    which the force-transform hook applies after the normal force pass.
    Canonical averages are recovered by reweighting with [exp(beta dV)]. *)

type t

val create : threshold:float -> alpha:float -> t

(** [boost t v] is [(dV, force_scale)] at potential energy [v]. *)
val boost : t -> float -> float * float

(** Install the force transform on the engine. *)
val attach : t -> Mdsp_md.Engine.t -> unit

(** Remove any installed force transform. *)
val detach : Mdsp_md.Engine.t -> unit

val last_boost : t -> float

(** All boost values observed, in time order. *)
val boost_samples : t -> float array

val reweighting_factors : t -> temp:float -> float array
val flex_ops_per_step : t -> n_atoms:int -> float
