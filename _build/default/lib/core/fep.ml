open Mdsp_util

type topology_info = {
  topo : Mdsp_ff.Topology.t;
  solute : bool array;  (** atoms being decoupled *)
  cutoff : float;
  elec : Mdsp_ff.Pair_interactions.electrostatics;
  sc_alpha : float;  (** soft-core alpha *)
}

let make_info ?(sc_alpha = 0.5) topo ~solute ~cutoff ~elec =
  if Array.length solute <> Mdsp_ff.Topology.n_atoms topo then
    invalid_arg "Fep.make_info: solute mask length mismatch";
  { topo; solute; cutoff; elec; sc_alpha }

(* Evaluator at coupling lambda: solute-environment LJ turns into Beutler
   soft-core scaled by lambda; solute-environment charges scale by lambda.
   Other pairs are untouched. lambda = 1 recovers the fully coupled
   system; lambda = 0 decouples the solute. *)
let evaluator info ~lambda =
  let topo = info.topo in
  let base =
    Mdsp_ff.Pair_interactions.of_topology topo ~cutoff:info.cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift ~elec:info.elec
  in
  if lambda >= 1. then base
  else begin
    let charges = Mdsp_ff.Topology.charges topo in
    let types =
      Array.map (fun (a : Mdsp_ff.Topology.atom) -> a.type_id) topo.atoms
    in
    let rc2 = info.cutoff *. info.cutoff in
    let eval i j r2 =
      let cross = info.solute.(i) <> info.solute.(j) in
      if not cross then base.Mdsp_ff.Pair_interactions.eval i j r2
      else if r2 >= rc2 then (0., 0.)
      else begin
        let eps_i, sig_i = topo.lj_types.(types.(i)) in
        let eps_j, sig_j = topo.lj_types.(types.(j)) in
        let epsilon = sqrt (eps_i *. eps_j) in
        let sigma = 0.5 *. (sig_i +. sig_j) in
        let sc =
          Mdsp_ff.Nonbonded.Soft_core_lj
            { epsilon; sigma; alpha = info.sc_alpha; lambda }
        in
        let e_lj, f_lj =
          Mdsp_ff.Nonbonded.eval_truncated sc ~cutoff:info.cutoff
            ~trunc:Mdsp_ff.Nonbonded.Shift r2
        in
        let qq = Units.coulomb *. charges.(i) *. charges.(j) *. lambda in
        let e_c, f_c =
          if qq = 0. then (0., 0.)
          else begin
            match info.elec with
            | Mdsp_ff.Pair_interactions.No_coulomb -> (0., 0.)
            | _ ->
                let r = sqrt r2 in
                ((qq /. r) -. (qq /. info.cutoff), qq /. (r2 *. r))
          end
        in
        (e_lj +. e_c, f_lj +. f_c)
      end
    in
    { Mdsp_ff.Pair_interactions.eval; cutoff = info.cutoff }
  end

(* Per-window machine compilation: the cross interaction becomes one
   soft-core table per type pair plus the charge-scaled electrostatic
   shape table; every other pair uses the topology's standard table set. *)
let table_evaluator info ~lambda ~n =
  let topo = info.topo in
  let cutoff = info.cutoff in
  let base_tables =
    Table.table_set_of_topology topo ~cutoff ~elec:info.elec ~n ()
  in
  let types =
    Array.map (fun (a : Mdsp_ff.Topology.atom) -> a.type_id) topo.atoms
  in
  let charges = Mdsp_ff.Topology.charges topo in
  let base_ev =
    Mdsp_machine.Htis.evaluator base_tables ~types ~charges ~cutoff
  in
  if lambda >= 1. then base_ev
  else begin
    let ntypes = Array.length topo.lj_types in
    let r_min = 0.8 in
    (* Soft-core tables are finite at r = 0, so they can start at 0.1. *)
    let cross_lj =
      Array.init ntypes (fun i ->
          Array.init ntypes (fun j ->
              let eps_i, sig_i = topo.lj_types.(i) in
              let eps_j, sig_j = topo.lj_types.(j) in
              let form =
                Mdsp_ff.Nonbonded.Soft_core_lj
                  {
                    epsilon = sqrt (eps_i *. eps_j);
                    sigma = 0.5 *. (sig_i +. sig_j);
                    alpha = info.sc_alpha;
                    lambda;
                  }
              in
              Table.compile ~r_min:0.1 ~r_cut:cutoff ~n
                (Table.of_form form ~cutoff)))
    in
    let cross_es =
      match info.elec with
      | Mdsp_ff.Pair_interactions.No_coulomb -> None
      | _ ->
          (* Cross electrostatics use the shifted-cutoff Coulomb shape
             scaled by lambda * qq (matching [evaluator]). *)
          Some
            (Table.compile ~r_min ~r_cut:cutoff ~n (fun r2 ->
                 let r = sqrt r2 in
                 ((1. /. r) -. (1. /. cutoff), 1. /. (r2 *. r))))
    in
    let rc2 = cutoff *. cutoff in
    let eval i j r2 =
      if info.solute.(i) = info.solute.(j) then
        base_ev.Mdsp_ff.Pair_interactions.eval i j r2
      else if r2 >= rc2 then (0., 0.)
      else begin
        let e_lj, f_lj =
          Mdsp_machine.Interp_table.eval cross_lj.(types.(i)).(types.(j)) r2
        in
        match cross_es with
        | None -> (e_lj, f_lj)
        | Some es ->
            let qq = Units.coulomb *. charges.(i) *. charges.(j) *. lambda in
            if qq = 0. then (e_lj, f_lj)
            else begin
              let e_c, f_c = Mdsp_machine.Interp_table.eval es r2 in
              (e_lj +. (qq *. e_c), f_lj +. (qq *. f_c))
            end
      end
    in
    { Mdsp_ff.Pair_interactions.eval; cutoff }
  end

(* Cross (solute-environment) energy at a given lambda for one
   configuration — iterates solute atoms against everything, honoring
   exclusions and minimum image. *)
let cross_energy info ~lambda box positions =
  let ev = evaluator info ~lambda in
  let n = Array.length positions in
  let e = ref 0. in
  for i = 0 to n - 1 do
    if info.solute.(i) then
      for j = 0 to n - 1 do
        if
          (not info.solute.(j))
          && not
               (Mdsp_space.Exclusions.excluded
                  info.topo.Mdsp_ff.Topology.exclusions i j)
        then begin
          let r2 = Pbc.dist2 box positions.(i) positions.(j) in
          if r2 < info.cutoff *. info.cutoff then
            e := !e +. fst (ev.Mdsp_ff.Pair_interactions.eval i j r2)
        end
      done
  done;
  !e

type window_samples = {
  lambda : float;
  du_forward : float array;  (** U(next) - U(this) sampled at this lambda *)
  du_backward : float array;  (** U(prev) - U(this) sampled at this lambda *)
}

type result = {
  windows : window_samples list;
  delta_f : float;  (** total, by BAR over adjacent windows *)
  per_stage : float array;
}

(* Dual-topology style run: at each lambda window, equilibrate then sample
   energy differences toward both neighbors. *)
let run info ~engine ~lambdas ~temp ~equil_steps ~sample_steps ~sample_stride =
  let m = Array.length lambdas in
  if m < 2 then invalid_arg "Fep.run: need at least two lambda windows";
  let fc = Mdsp_md.Engine.force_calc engine in
  let windows = ref [] in
  for w = 0 to m - 1 do
    let lam = lambdas.(w) in
    Mdsp_md.Force_calc.set_evaluator fc (evaluator info ~lambda:lam);
    Mdsp_md.Engine.refresh_forces engine;
    Mdsp_md.Engine.run engine equil_steps;
    let fwd = ref [] and bwd = ref [] in
    let n_samples = sample_steps / sample_stride in
    for _ = 1 to n_samples do
      Mdsp_md.Engine.run engine sample_stride;
      let st = Mdsp_md.Engine.state engine in
      let box = st.Mdsp_md.State.box in
      let pos = st.Mdsp_md.State.positions in
      let u_here = cross_energy info ~lambda:lam box pos in
      if w < m - 1 then
        fwd :=
          (cross_energy info ~lambda:lambdas.(w + 1) box pos -. u_here)
          :: !fwd;
      if w > 0 then
        bwd :=
          (cross_energy info ~lambda:lambdas.(w - 1) box pos -. u_here)
          :: !bwd
    done;
    windows :=
      {
        lambda = lam;
        du_forward = Array.of_list (List.rev !fwd);
        du_backward = Array.of_list (List.rev !bwd);
      }
      :: !windows
  done;
  let windows = List.rev !windows in
  let arr = Array.of_list windows in
  let per_stage =
    Array.init (m - 1) (fun i ->
        Mdsp_analysis.Free_energy.bar ~temp ~forward:arr.(i).du_forward
          ~backward:arr.(i + 1).du_backward)
  in
  let delta_f = Array.fold_left ( +. ) 0. per_stage in
  { windows; delta_f; per_stage }

(* Machine mapping: the soft-core cross interactions need a second table
   pass through the pipelines (separate tables per lambda window), i.e. the
   pair workload for cross pairs runs twice when sampling du. *)
let pair_passes _ = 1.3
let flex_ops_per_step _ = 100.
