(** Two-dimensional metadynamics: Gaussian hills on a pair of collective
    variables. Same deposition protocol as the 1D version
    ({!Metadynamics}), with an optional well-tempered height schedule; the
    free-energy estimate comes back on a grid. *)

type t

val create :
  ?well_tempered:float ->
  cv1:Cv.t ->
  cv2:Cv.t ->
  sigma1:float ->
  sigma2:float ->
  height:float ->
  stride:int ->
  temp:float ->
  unit ->
  t

(** Register the bias and the deposition hook on an engine. *)
val attach : t -> Mdsp_md.Engine.t -> unit

(** Current bias at a CV point. *)
val bias_energy : t -> float -> float -> float

val n_hills : t -> int

(** [free_energy_surface t ~lo1 ~hi1 ~bins1 ~lo2 ~hi2 ~bins2] is the grid
    of (s1, s2, F) with F = -bias (scaled if well-tempered), not shifted. *)
val free_energy_surface :
  t ->
  lo1:float -> hi1:float -> bins1:int ->
  lo2:float -> hi2:float -> bins2:int ->
  (float * float * float) array array

(** Minimum-free-energy value of s2 for each s1 column of the surface —
    a path estimate comparable to the string method's. *)
val ridge_path :
  t ->
  lo1:float -> hi1:float -> bins1:int ->
  lo2:float -> hi2:float -> bins2:int ->
  (float * float) array

val flex_ops_per_step : t -> float
