open Mdsp_util

type t = {
  cvs : Cv.t array;
  mutable images : float array array;  (** n_images x n_cvs *)
  states : Mdsp_md.State.t array;
  engine : Mdsp_md.Engine.t;
  k : float;
  equil_steps : int;
  n_swarms : int;
  swarm_steps : int;
  rng : Rng.t;
  mutable iterations : int;
  mutable history : float array array list;  (** images per iteration *)
}

let interpolate_endpoint ~a ~b ~n =
  Array.init n (fun i ->
      let frac = float_of_int i /. float_of_int (n - 1) in
      Array.init (Array.length a) (fun d ->
          a.(d) +. (frac *. (b.(d) -. a.(d)))))

let create ~cvs ~start ~stop ~n_images ~engine ~k ~equil_steps ~n_swarms
    ~swarm_steps ~seed =
  if n_images < 3 then invalid_arg "String_method.create: need >= 3 images";
  if Array.length start <> Array.length cvs
     || Array.length stop <> Array.length cvs
  then invalid_arg "String_method.create: endpoint dimension mismatch";
  let images = interpolate_endpoint ~a:start ~b:stop ~n:n_images in
  let st0 = Mdsp_md.Engine.state engine in
  let states = Array.init n_images (fun _ -> Mdsp_md.State.copy st0) in
  {
    cvs;
    images;
    states;
    engine;
    k;
    equil_steps;
    n_swarms;
    swarm_steps;
    rng = Rng.create seed;
    iterations = 0;
    history = [];
  }

let images t = Array.map Array.copy t.images
let iterations t = t.iterations
let history t = List.rev t.history

let measure_cvs t =
  let st = Mdsp_md.Engine.state t.engine in
  Array.map
    (fun cv -> cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions)
    t.cvs

let add_restraints t image =
  let fc = Mdsp_md.Engine.force_calc t.engine in
  Array.iteri
    (fun d cv ->
      let center = image.(d) in
      Mdsp_md.Force_calc.add_bias fc
        (Cv.harmonic_bias
           ~name:(Printf.sprintf "string_r%d" d)
           ~cv ~k:t.k
           ~center:(fun () -> center)))
    t.cvs

let remove_restraints t =
  let fc = Mdsp_md.Engine.force_calc t.engine in
  Array.iteri
    (fun d _ ->
      ignore (Mdsp_md.Force_calc.remove_bias fc (Printf.sprintf "string_r%d" d)))
    t.cvs

(* Arc-length reparametrization: redistribute images at equal arc length
   along the piecewise-linear string. *)
let reparametrize images =
  let n = Array.length images in
  let dim = Array.length images.(0) in
  let seg_len = Array.make (n - 1) 0. in
  for i = 0 to n - 2 do
    let s = ref 0. in
    for d = 0 to dim - 1 do
      s := !s +. ((images.(i + 1).(d) -. images.(i).(d)) ** 2.)
    done;
    seg_len.(i) <- sqrt !s
  done;
  let total = Array.fold_left ( +. ) 0. seg_len in
  if total <= 0. then images
  else begin
    let cum = Array.make n 0. in
    for i = 1 to n - 1 do
      cum.(i) <- cum.(i - 1) +. seg_len.(i - 1)
    done;
    Array.init n (fun i ->
        if i = 0 then Array.copy images.(0)
        else if i = n - 1 then Array.copy images.(n - 1)
        else begin
          let target = total *. float_of_int i /. float_of_int (n - 1) in
          (* Locate the segment containing the target arc length. *)
          let seg = ref 0 in
          while !seg < n - 2 && cum.(!seg + 1) < target do
            incr seg
          done;
          let s = !seg in
          let denom = Float.max 1e-12 seg_len.(s) in
          let frac = (target -. cum.(s)) /. denom in
          Array.init dim (fun d ->
              images.(s).(d) +. (frac *. (images.(s + 1).(d) -. images.(s).(d))))
        end)
  end

(* One string iteration. Returns the max image displacement in CV space. *)
let iterate t =
  let n = Array.length t.images in
  let dim = Array.length t.cvs in
  let drifts = Array.make_matrix n dim 0. in
  let eng_state = Mdsp_md.Engine.state t.engine in
  for i = 0 to n - 1 do
    (* Restrained equilibration at the image. *)
    Mdsp_md.State.blit ~src:t.states.(i) ~dst:eng_state;
    add_restraints t t.images.(i);
    Mdsp_md.Engine.refresh_forces t.engine;
    Mdsp_md.Engine.run t.engine t.equil_steps;
    remove_restraints t;
    Mdsp_md.State.blit ~src:eng_state ~dst:t.states.(i);
    (* Swarm of short unbiased trajectories. *)
    let z0 = measure_cvs t in
    let mean_drift = Array.make dim 0. in
    for _ = 1 to t.n_swarms do
      Mdsp_md.State.blit ~src:t.states.(i) ~dst:eng_state;
      (* Fresh velocities decorrelate swarm members. *)
      Mdsp_md.State.thermalize eng_state t.rng
        ~temp:(Mdsp_md.Engine.config t.engine).Mdsp_md.Engine.temperature;
      Mdsp_md.Engine.refresh_forces t.engine;
      Mdsp_md.Engine.run t.engine t.swarm_steps;
      let z1 = measure_cvs t in
      for d = 0 to dim - 1 do
        mean_drift.(d) <-
          mean_drift.(d) +. ((z1.(d) -. z0.(d)) /. float_of_int t.n_swarms)
      done
    done;
    for d = 0 to dim - 1 do
      drifts.(i).(d) <- mean_drift.(d)
    done
  done;
  (* Move interior images by the mean drift, then reparametrize. *)
  let proposed =
    Array.mapi
      (fun i img ->
        if i = 0 || i = n - 1 then Array.copy img
        else Array.mapi (fun d v -> v +. drifts.(i).(d)) img)
      t.images
  in
  let new_images = reparametrize proposed in
  let max_move = ref 0. in
  for i = 0 to n - 1 do
    let s = ref 0. in
    for d = 0 to dim - 1 do
      s := !s +. ((new_images.(i).(d) -. t.images.(i).(d)) ** 2.)
    done;
    max_move := Float.max !max_move (sqrt !s)
  done;
  t.images <- new_images;
  t.iterations <- t.iterations + 1;
  t.history <- Array.map Array.copy new_images :: t.history;
  !max_move

let converge ?(tol = 0.05) ?(max_iterations = 50) t =
  let rec go last =
    if t.iterations >= max_iterations then last
    else begin
      let m = iterate t in
      if m < tol then m else go m
    end
  in
  go infinity

let flex_ops_per_step t =
  Array.fold_left (fun acc cv -> acc +. cv.Cv.flex_ops) 100. t.cvs
