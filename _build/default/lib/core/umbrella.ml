type window_result = {
  center : float;
  k : float;
  samples : float array;
}

type plan = {
  cv : Cv.t;
  k : float;
  centers : float array;
  equil_steps : int;
  sample_steps : int;
  sample_stride : int;
}

let make_plan ~cv ~k ~centers ~equil_steps ~sample_steps ~sample_stride =
  if Array.length centers < 2 then
    invalid_arg "Umbrella.make_plan: need at least two windows";
  { cv; k; centers; equil_steps; sample_steps; sample_stride }

let run_window plan eng center =
  let fc = Mdsp_md.Engine.force_calc eng in
  let bias, last =
    Cv.harmonic_bias_tracked ~name:"umbrella" ~cv:plan.cv ~k:plan.k
      ~center:(fun () -> center)
  in
  Mdsp_md.Force_calc.add_bias fc bias;
  Mdsp_md.Engine.refresh_forces eng;
  Mdsp_md.Engine.run eng plan.equil_steps;
  let samples = ref [] in
  let n_samples = plan.sample_steps / plan.sample_stride in
  for _ = 1 to n_samples do
    Mdsp_md.Engine.run eng plan.sample_stride;
    samples := last () :: !samples
  done;
  ignore (Mdsp_md.Force_calc.remove_bias fc "umbrella");
  Mdsp_md.Engine.refresh_forces eng;
  { center; k = plan.k; samples = Array.of_list (List.rev !samples) }

(* Windows run sequentially on one engine, dragging the system from window
   to window — the standard serial protocol. (On the machine each window is
   an independent job; the mapping layer charges no extra per-step cost.) *)
let run plan ~make_engine =
  let eng = make_engine () in
  Array.to_list
    (Array.map (fun c -> run_window plan eng c) plan.centers)

let to_wham_windows results =
  List.map
    (fun (w : window_result) ->
      {
        Mdsp_analysis.Wham.bias = (fun x -> w.k *. ((x -. w.center) ** 2.));
        samples = w.samples;
      })
    results

let solve ~temp ~lo ~hi ~bins results =
  Mdsp_analysis.Wham.solve ~temp ~lo ~hi ~bins (to_wham_windows results)
