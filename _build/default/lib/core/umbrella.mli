(** Umbrella sampling along a collective variable, analyzed with WHAM.

    A plan fixes the window centers, the restraint stiffness, and the
    sampling schedule; {!run} executes the windows serially on a fresh
    engine, and {!solve} recovers the potential of mean force. *)

type window_result = {
  center : float;
  k : float;
  samples : float array;
}

type plan = {
  cv : Cv.t;
  k : float;
  centers : float array;
  equil_steps : int;
  sample_steps : int;
  sample_stride : int;
}

val make_plan :
  cv:Cv.t -> k:float -> centers:float array -> equil_steps:int ->
  sample_steps:int -> sample_stride:int -> plan

(** Run one window on an existing engine (bias added then removed). *)
val run_window : plan -> Mdsp_md.Engine.t -> float -> window_result

(** Run all windows on an engine built by [make_engine]. *)
val run : plan -> make_engine:(unit -> Mdsp_md.Engine.t) -> window_result list

val to_wham_windows : window_result list -> Mdsp_analysis.Wham.window list

val solve :
  temp:float -> lo:float -> hi:float -> bins:int -> window_result list ->
  Mdsp_analysis.Wham.profile
