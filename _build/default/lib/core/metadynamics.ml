open Mdsp_util

type hill = { center : float; height : float }

type t = {
  cv : Cv.t;
  sigma : float;
  w0 : float;  (** initial hill height *)
  stride : int;
  well_tempered : float option;  (** delta T for well-tempered scaling *)
  temp : float;
  mutable hills : hill list;
  mutable n_hills : int;
}

let create ?well_tempered ~cv ~sigma ~height ~stride ~temp () =
  if sigma <= 0. then invalid_arg "Metadynamics.create: sigma must be positive";
  if height <= 0. then invalid_arg "Metadynamics.create: height must be positive";
  if stride <= 0 then invalid_arg "Metadynamics.create: stride must be positive";
  {
    cv;
    sigma;
    w0 = height;
    stride;
    well_tempered;
    temp;
    hills = [];
    n_hills = 0;
  }

let bias_energy t s =
  List.fold_left
    (fun acc h ->
      let d = (s -. h.center) /. t.sigma in
      acc +. (h.height *. exp (-0.5 *. d *. d)))
    0. t.hills

let bias_derivative t s =
  List.fold_left
    (fun acc h ->
      let d = (s -. h.center) /. t.sigma in
      acc
      +. (h.height *. exp (-0.5 *. d *. d) *. (-.d /. t.sigma)))
    0. t.hills

let bias t =
  {
    Mdsp_md.Force_calc.bias_name = "metadynamics";
    bias_compute =
      (fun box positions acc ->
        let s = t.cv.Cv.value box positions in
        let e = bias_energy t s in
        let de_ds = bias_derivative t s in
        List.iter
          (fun (i, g) ->
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.add acc.Mdsp_ff.Bonded.forces.(i)
                (Vec3.scale (-.de_ds) g))
          (t.cv.Cv.gradient box positions);
        e);
  }

let deposit t s =
  let height =
    match t.well_tempered with
    | None -> t.w0
    | Some delta_t ->
        (* Well-tempered: heights decay where bias has accumulated. *)
        t.w0 *. exp (-.bias_energy t s /. (Units.k_b *. delta_t))
  in
  t.hills <- { center = s; height } :: t.hills;
  t.n_hills <- t.n_hills + 1

let hook t =
  fun eng ->
    if Mdsp_md.Engine.steps_done eng mod t.stride = 0 then begin
      let st = Mdsp_md.Engine.state eng in
      let s = t.cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions in
      deposit t s
    end

let attach t eng =
  Mdsp_md.Force_calc.add_bias (Mdsp_md.Engine.force_calc eng) (bias t);
  Mdsp_md.Engine.add_post_step eng ~name:"metadynamics" (hook t)

let n_hills t = t.n_hills

let free_energy_estimate t ~lo ~hi ~bins =
  let width = (hi -. lo) /. float_of_int bins in
  let scale =
    match t.well_tempered with
    | None -> 1.
    | Some delta_t -> (t.temp +. delta_t) /. delta_t
  in
  Array.init bins (fun b ->
      let s = lo +. ((float_of_int b +. 0.5) *. width) in
      (s, -.scale *. bias_energy t s))

(* Machine mapping: hill evaluation runs on the programmable cores. Cost
   grows with the hill count unless hills are binned onto a grid; we model
   the (standard) gridded implementation with constant cost. *)
let flex_ops_per_step t = t.cv.Cv.flex_ops +. 200.
