open Mdsp_machine

type method_cost = {
  method_name : string;
  flex_ops_per_step : float;
  pair_passes : float;
  bytes_per_step : float;
}

let plain =
  {
    method_name = "plain MD";
    flex_ops_per_step = 0.;
    pair_passes = 1.;
    bytes_per_step = 0.;
  }

let of_restraint k =
  {
    method_name = Printf.sprintf "restraint(%s)" (Kernel.name k);
    flex_ops_per_step = Kernel.flex_ops k;
    pair_passes = 1.;
    bytes_per_step = 0.;
  }

let of_metadynamics m =
  {
    method_name = "metadynamics";
    flex_ops_per_step = Metadynamics.flex_ops_per_step m;
    pair_passes = 1.;
    bytes_per_step = 32.;
  }

let of_smd s =
  {
    method_name = "steered MD";
    flex_ops_per_step = Smd.flex_ops_per_step s;
    pair_passes = 1.;
    bytes_per_step = 16.;
  }

let of_tempering t =
  {
    method_name = "simulated tempering";
    flex_ops_per_step = Tempering.flex_ops_per_step t;
    pair_passes = 1.;
    bytes_per_step = Tempering.method_bytes_per_step t;
  }

let of_remd r ~n_atoms =
  {
    method_name = "replica exchange";
    flex_ops_per_step = 50.;
    pair_passes = 1.;
    bytes_per_step = Remd.method_bytes_per_step r ~n_atoms;
  }

let of_fep info =
  {
    method_name = "FEP (soft-core)";
    flex_ops_per_step = Fep.flex_ops_per_step info;
    pair_passes = Fep.pair_passes info;
    bytes_per_step = 0.;
  }

let of_tamd t =
  {
    method_name = "TAMD";
    flex_ops_per_step = Tamd.flex_ops_per_step t;
    pair_passes = 1.;
    bytes_per_step = 16.;
  }

let of_amd a ~n_atoms =
  {
    method_name = "accelerated MD";
    flex_ops_per_step = Amd.flex_ops_per_step a ~n_atoms;
    pair_passes = 1.;
    bytes_per_step = 8.;
  }

let apply cost (w : Perf.workload) =
  {
    w with
    Perf.flex_ops_per_step = w.Perf.flex_ops_per_step +. cost.flex_ops_per_step;
    pair_passes = w.Perf.pair_passes *. cost.pair_passes;
    method_bytes_per_step = w.Perf.method_bytes_per_step +. cost.bytes_per_step;
  }

let overhead cfg base cost =
  let t0 = (Perf.step_time cfg base).Perf.step_s in
  let t1 = (Perf.step_time cfg (apply cost base)).Perf.step_s in
  (t1 /. t0) -. 1.

type row = {
  name : string;
  breakdown : Perf.breakdown;
  ns_per_day : float;
  overhead_pct : float;
}

let table cfg base costs =
  let t0 = (Perf.step_time cfg base).Perf.step_s in
  List.map
    (fun cost ->
      let w = apply cost base in
      let b = Perf.step_time cfg w in
      {
        name = cost.method_name;
        breakdown = b;
        ns_per_day = Perf.ns_per_day cfg w;
        overhead_pct = ((b.Perf.step_s /. t0) -. 1.) *. 100.;
      })
    costs
