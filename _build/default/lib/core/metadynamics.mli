(** Metadynamics: history-dependent Gaussian bias on a collective variable.

    Hills of height [height] and width [sigma] are deposited at the current
    CV value every [stride] steps; the accumulated bias discourages
    revisiting sampled regions, and its negative converges to the free
    energy along the CV (up to a constant). [well_tempered] enables
    height decay with an effective delta-T, giving the well-tempered
    variant whose estimate is scaled by (T + dT)/dT.

    On the machine, the hill sum evaluates on the programmable cores;
    {!flex_ops_per_step} feeds the mapping layer. *)

type t

val create :
  ?well_tempered:float ->
  cv:Cv.t ->
  sigma:float ->
  height:float ->
  stride:int ->
  temp:float ->
  unit ->
  t

(** Register the bias and the deposition hook on an engine. *)
val attach : t -> Mdsp_md.Engine.t -> unit

(** Current bias potential at a CV value. *)
val bias_energy : t -> float -> float

(** Hills deposited so far. *)
val n_hills : t -> int

(** [free_energy_estimate t ~lo ~hi ~bins] is [(s, F(s))] with
    [F = -bias] (scaled appropriately if well-tempered), not yet shifted. *)
val free_energy_estimate :
  t -> lo:float -> hi:float -> bins:int -> (float * float) array

(** Programmable-core cost for the mapping layer. *)
val flex_ops_per_step : t -> float
