(** The interpolation-table compiler — half of the generality story.

    Any radial interaction, analytic or user-supplied, is fitted into the
    hardwired pipelines' piecewise-cubic format ({!Mdsp_machine.Interp_table}).
    Once compiled, the pipelines evaluate it at full speed: the cost of a
    pair interaction is independent of the functional form. The compiler
    reports the accuracy achieved so users can trade table width against
    error (the E1/E2 experiments).

    Fitting is cubic-Hermite per interval in squared distance, matching
    values and derivatives at the knots, so the table is C^1 — important
    because force discontinuities pump energy into a simulation. *)


(** A radial interaction to compile: [f r2 = (energy, f_over_r)]. *)
type radial = float -> float * float

(** [of_form ?shift form ~cutoff] is the radial function of an analytic
    form, energy-shifted to zero at the cutoff when [shift] (default true). *)
val of_form : ?shift:bool -> Mdsp_ff.Nonbonded.form -> cutoff:float -> radial

(** [compile ~r_min ~r_cut ~n ~quantize f] fits [f] on [n] intervals.
    [quantize] (default true) applies the hardware's block fixed-point
    coefficient quantization. *)
val compile :
  r_min:float -> r_cut:float -> n:int -> ?quantize:bool -> radial ->
  Mdsp_machine.Interp_table.t

type error_report = {
  max_abs_energy : float;
  max_abs_force : float;  (** on f_over_r *)
  max_rel_force : float;
      (** relative to local |f_over_r| with an absolute floor *)
  rms_force : float;
  samples : int;
}

(** [accuracy table f ~samples] compares the compiled table against the
    analytic radial on a dense grid of squared distances spanning the table
    domain. *)
val accuracy :
  Mdsp_machine.Interp_table.t -> radial -> ?samples:int -> unit -> error_report

(** [width_for_accuracy ~r_min ~r_cut ~target f] is the smallest
    power-of-two interval count whose max relative force error is below
    [target], or [None] if 65536 intervals still miss it. *)
val width_for_accuracy :
  r_min:float -> r_cut:float -> target:float -> radial -> int option

(** Compile the standard table set for a topology: one LJ table per type
    pair and one shared erfc-Coulomb (or plain/RF) shape table. This is how
    an entire force field boards the machine. *)
val table_set_of_topology :
  Mdsp_ff.Topology.t ->
  cutoff:float ->
  elec:Mdsp_ff.Pair_interactions.electrostatics ->
  n:int ->
  ?quantize:bool ->
  unit ->
  Mdsp_machine.Htis.table_set
