(** Collective variables (CVs): scalar functions of the configuration with
    analytic gradients.

    Every enhanced-sampling method in {!Methods} is generic over a CV. On
    the machine, CV values and gradients are computed by the programmable
    cores; {!flex_ops} estimates that cost for the mapping layer. *)

open Mdsp_util

type t = {
  cv_name : string;
  value : Pbc.t -> Vec3.t array -> float;
  gradient : Pbc.t -> Vec3.t array -> (int * Vec3.t) list;
      (** sparse gradient: (atom, d value / d position) *)
  flex_ops : float;  (** programmable-core ops per evaluation *)
}

(** Minimum-image distance between two atoms. *)
val distance : i:int -> j:int -> t

(** A coordinate of one atom relative to the box center ([`X], [`Y], [`Z]).
    Well-defined as long as the atom stays within half a box of the
    center — appropriate for the double-well model systems. *)
val position : axis:[ `X | `Y | `Z ] -> i:int -> t

(** Distance between the centers of mass of two groups. *)
val com_distance :
  group_a:int array -> group_b:int array -> masses:float array -> t

(** Smooth coordination number of atom [i] with [others]:
    sum over j of (1 - (r/r0)^6) / (1 - (r/r0)^12). *)
val coordination : i:int -> others:int array -> r0:float -> t

(** The angle at atom [j] formed by atoms [i]-[j]-[k], in radians. *)
val angle : i:int -> j:int -> k:int -> t

(** The torsion angle of atoms [i]-[j]-[k]-[l], in (-pi, pi] — the classic
    metadynamics coordinate. Note the 2 pi periodicity: biases built on it
    should either stay away from the branch cut or use sin/cos embeddings. *)
val dihedral : i:int -> j:int -> k:int -> l:int -> t

(** Mass-weighted radius of gyration of a group (PBC-safe for compact
    groups anchored at the first atom). *)
val gyration_radius : atoms:int array -> masses:float array -> t

(** [harmonic_bias ~name ~cv ~k ~center cv] is the restraint
    [k (cv - center())^2] as a force-calculator bias; [center] is read at
    every evaluation so callers can move it (umbrella windows are fixed
    closures, steered MD advances it). *)
val harmonic_bias :
  name:string -> cv:t -> k:float -> center:(unit -> float) ->
  Mdsp_md.Force_calc.bias

(** Last value evaluated through a bias built by {!harmonic_bias_tracked}:
    the pair is (bias, fun () -> last cv value). *)
val harmonic_bias_tracked :
  name:string -> cv:t -> k:float -> center:(unit -> float) ->
  Mdsp_md.Force_calc.bias * (unit -> float)
