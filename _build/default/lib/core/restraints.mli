(** Restraints, expressed as programmable-core kernels or CV biases.

    Position and flat-bottom restraints are built with the kernel DSL — the
    compiler differentiates the energy expression, so these serve as both
    useful tools and the canonical kernel examples. *)

open Mdsp_util

(** Harmonic positional restraint [k |r - r0|^2]; [reference] is relative to
    the box center. *)
val position :
  name:string -> particles:int array -> k:float -> reference:Vec3.t ->
  Kernel.t

(** Flat-bottom spherical wall: free inside [radius] of the box center,
    harmonic outside. *)
val flat_bottom :
  name:string -> particles:int array -> k:float -> radius:float -> Kernel.t

(** Wrap a kernel into a bias bound to an engine's clock. *)
val kernel_bias : Mdsp_md.Engine.t -> Kernel.t -> Mdsp_md.Force_calc.bias

(** Register a kernel on an engine's force calculator. *)
val attach_kernel : Mdsp_md.Engine.t -> Kernel.t -> unit

(** Harmonic distance restraint between two atoms. *)
val distance :
  name:string -> i:int -> j:int -> k:float -> target:float ->
  Mdsp_md.Force_calc.bias

val flex_ops_of_kernel : Kernel.t -> float
