open Mdsp_util

type t = {
  epsilon : float;
  sigma : float;
  cutoff : float;
  insertions_per_frame : int;
  rng : Rng.t;
  mutable du : float list;
  mutable n : int;
}

let create ~epsilon ~sigma ~cutoff ~insertions_per_frame ~seed =
  if insertions_per_frame <= 0 then
    invalid_arg "Widom.create: insertions_per_frame must be positive";
  {
    epsilon;
    sigma;
    cutoff;
    insertions_per_frame;
    rng = Rng.create seed;
    du = [];
    n = 0;
  }

let insertion_energy t (topo : Mdsp_ff.Topology.t) box positions point =
  let rc2 = t.cutoff *. t.cutoff in
  let e = ref 0. in
  Array.iteri
    (fun j p ->
      let r2 = Pbc.dist2 box point p in
      if r2 < rc2 then begin
        let eps_j, sigma_j =
          topo.Mdsp_ff.Topology.lj_types.(topo.Mdsp_ff.Topology.atoms.(j)
                                            .Mdsp_ff.Topology.type_id)
        in
        if eps_j > 0. then begin
          let form =
            Mdsp_ff.Nonbonded.lorentz_berthelot (t.epsilon, t.sigma)
              (eps_j, sigma_j)
          in
          e :=
            !e
            +. fst
                 (Mdsp_ff.Nonbonded.eval_truncated form ~cutoff:t.cutoff
                    ~trunc:Mdsp_ff.Nonbonded.Shift r2)
        end
      end)
    positions;
  !e

let sample t eng =
  let st = Mdsp_md.Engine.state eng in
  let box = st.Mdsp_md.State.box in
  let positions = st.Mdsp_md.State.positions in
  let topo_fc = Mdsp_md.Engine.force_calc eng in
  let topo = Mdsp_md.Force_calc.topology topo_fc in
  let open Pbc in
  for _ = 1 to t.insertions_per_frame do
    let point =
      Vec3.make
        (Rng.uniform_in t.rng 0. box.lx)
        (Rng.uniform_in t.rng 0. box.ly)
        (Rng.uniform_in t.rng 0. box.lz)
    in
    t.du <- insertion_energy t topo box positions point :: t.du;
    t.n <- t.n + 1
  done

let attach t ~stride eng =
  if stride <= 0 then invalid_arg "Widom.attach: stride must be positive";
  Mdsp_md.Engine.add_post_step eng ~name:"widom" (fun eng ->
      if Mdsp_md.Engine.steps_done eng mod stride = 0 then sample t eng)

let n_samples t = t.n
let insertion_energies t = Array.of_list t.du

let mu_excess t ~temp =
  if t.n = 0 then invalid_arg "Widom.mu_excess: no samples";
  Mdsp_analysis.Free_energy.widom ~temp (insertion_energies t)
