(** Temperature replica exchange (parallel tempering).

    Runs a ladder of engines, one per temperature rung; every [stride] steps
    neighboring rungs attempt a Metropolis configuration exchange
    (alternating even/odd pairs per sweep). Each engine must run a
    thermostat. *)

type t

val create :
  engines:Mdsp_md.Engine.t array -> temps:float array -> stride:int ->
  seed:int -> t

(** [run t ~sweeps] advances all replicas [sweeps * stride] steps with
    exchange attempts between sweeps. *)
val run : t -> sweeps:int -> unit

(** Per-neighbor-pair acceptance rates. *)
val acceptance : t -> float array

val engines : t -> Mdsp_md.Engine.t array

(** [replica_of_config t].(c) is the rung currently holding the
    configuration that started at rung [c] — diagnostics for ladder mixing. *)
val replica_of_config : t -> int array

(** Extra communication charged per step by the machine mapping. *)
val method_bytes_per_step : t -> n_atoms:int -> float
