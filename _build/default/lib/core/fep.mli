(** Alchemical free-energy perturbation.

    A subset of atoms (the solute) is coupled to its environment through a
    lambda-dependent evaluator: Beutler soft-core Lennard-Jones and linearly
    scaled electrostatics. Windows along the lambda schedule are sampled in
    sequence; adjacent-window energy differences feed the Bennett acceptance
    ratio. On the machine this is the showcase for per-window interaction
    tables: every lambda compiles to its own table set and runs at full
    pipeline speed. *)

open Mdsp_util

type topology_info

val make_info :
  ?sc_alpha:float ->
  Mdsp_ff.Topology.t ->
  solute:bool array ->
  cutoff:float ->
  elec:Mdsp_ff.Pair_interactions.electrostatics ->
  topology_info

(** The lambda-coupled pair evaluator (lambda in [0, 1]; 1 = fully
    coupled). *)
val evaluator :
  topology_info -> lambda:float -> Mdsp_ff.Pair_interactions.evaluator

(** The same lambda-coupled interaction, compiled entirely into machine
    interpolation tables (one soft-core table per type pair for the
    solute-environment cross terms, the standard table set for everything
    else, and the charge-scaled shape table for cross electrostatics) —
    this is how a lambda window boards the pair pipelines at full speed.
    [n] is the interval count per table. *)
val table_evaluator :
  topology_info -> lambda:float -> n:int ->
  Mdsp_ff.Pair_interactions.evaluator

(** Solute-environment interaction energy of a configuration at a lambda. *)
val cross_energy :
  topology_info -> lambda:float -> Pbc.t -> Vec3.t array -> float

type window_samples = {
  lambda : float;
  du_forward : float array;
  du_backward : float array;
}

type result = {
  windows : window_samples list;
  delta_f : float;
  per_stage : float array;
}

(** Run the full window schedule on an engine whose force calculator will
    have its evaluator swapped per window. [delta_f] is
    F(last lambda) - F(first lambda). *)
val run :
  topology_info ->
  engine:Mdsp_md.Engine.t ->
  lambdas:float array ->
  temp:float ->
  equil_steps:int ->
  sample_steps:int ->
  sample_stride:int ->
  result

val pair_passes : topology_info -> float
val flex_ops_per_step : topology_info -> float
