(** Widom test-particle insertion: the excess chemical potential of a ghost
    LJ particle, sampled during a run. Cross-validates the alchemical FEP
    route (the two must agree: coupling a particle by FEP measures the same
    mu_ex that Widom estimates by virtual insertions). *)

type t

(** The ghost particle's own LJ parameters (mixed with each solvent type by
    Lorentz-Berthelot). *)
val create :
  epsilon:float -> sigma:float -> cutoff:float -> insertions_per_frame:int ->
  seed:int -> t

(** Sample one configuration frame from a running engine. *)
val sample : t -> Mdsp_md.Engine.t -> unit

(** Register a hook sampling every [stride] steps. *)
val attach : t -> stride:int -> Mdsp_md.Engine.t -> unit

val n_samples : t -> int

(** Excess chemical potential, kcal/mol. *)
val mu_excess : t -> temp:float -> float

(** Raw insertion energies (for custom estimators). *)
val insertion_energies : t -> float array
