(** Simulated tempering: a single replica performs a random walk on a
    temperature ladder, with Metropolis moves every [stride] steps using the
    instantaneous potential energy and adaptive (Wang–Landau) rung weights.

    The engine must run a thermostat whose target the method can switch
    (any of Langevin / Berendsen / Nosé–Hoover). *)

type t

val create : ?wl_delta:float -> temps:float array -> stride:int -> unit -> t

(** Register the per-step hook; also sets the engine to the initial rung. *)
val attach : t -> Mdsp_md.Engine.t -> unit

val rung : t -> int
val temperature : t -> float
val visits : t -> int array
val weights : t -> float array
val acceptance_rate : t -> float

(** Stop weight adaption (production phase). *)
val freeze_adaption : t -> unit

val flex_ops_per_step : t -> float
val method_bytes_per_step : t -> float
