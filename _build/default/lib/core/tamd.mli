(** Temperature-accelerated molecular dynamics (TAMD / d-AFED).

    An extended variable [s] is tethered to a collective variable [z] by a
    stiff spring and evolved by overdamped Brownian dynamics at an elevated
    temperature [s_temp]; the hot extended variable drags the physical
    system across barriers along the CV while the rest of the system stays
    cold. *)

type t

(** [gamma] is the per-step mobility of the extended variable (dimensionless
    fraction of the gradient step, in (0, 1]). *)
val create :
  ?record_stride:int ->
  cv:Cv.t -> k:float -> s0:float -> gamma:float -> s_temp:float -> seed:int ->
  unit -> t

val attach : t -> Mdsp_md.Engine.t -> unit

(** Current extended-variable value. *)
val s_value : t -> float

(** Recorded extended-variable trajectory. *)
val trace : t -> float list

val flex_ops_per_step : t -> float
