open Mdsp_util

type t = {
  cv_name : string;
  value : Pbc.t -> Vec3.t array -> float;
  gradient : Pbc.t -> Vec3.t array -> (int * Vec3.t) list;
  flex_ops : float;
}

let distance ~i ~j =
  {
    cv_name = Printf.sprintf "dist(%d,%d)" i j;
    value = (fun box pos -> Pbc.dist box pos.(i) pos.(j));
    gradient =
      (fun box pos ->
        let d = Pbc.min_image box pos.(i) pos.(j) in
        let r = Float.max 1e-10 (Vec3.norm d) in
        let u = Vec3.scale (1. /. r) d in
        [ (i, u); (j, Vec3.neg u) ]);
    flex_ops = 30.;
  }

let center_of box =
  let open Pbc in
  Vec3.make (box.lx /. 2.) (box.ly /. 2.) (box.lz /. 2.)

let position ~axis ~i =
  let pick (v : Vec3.t) =
    match axis with `X -> v.Vec3.x | `Y -> v.Vec3.y | `Z -> v.Vec3.z
  in
  let unit =
    match axis with
    | `X -> Vec3.make 1. 0. 0.
    | `Y -> Vec3.make 0. 1. 0.
    | `Z -> Vec3.make 0. 0. 1.
  in
  let name = match axis with `X -> "x" | `Y -> "y" | `Z -> "z" in
  {
    cv_name = Printf.sprintf "%s(%d)" name i;
    value = (fun box pos -> pick (Pbc.min_image box pos.(i) (center_of box)));
    gradient = (fun _ _ -> [ (i, unit) ]);
    flex_ops = 10.;
  }

let com_distance ~group_a ~group_b ~masses =
  if Array.length group_a = 0 || Array.length group_b = 0 then
    invalid_arg "Cv.com_distance: empty group";
  let mass_of g =
    Array.fold_left (fun acc i -> acc +. masses.(i)) 0. g
  in
  let ma = mass_of group_a and mb = mass_of group_b in
  (* COM computed relative to the group's first atom to stay PBC-safe for
     compact groups. *)
  let com box pos g =
    let anchor = pos.(g.(0)) in
    let acc = ref Vec3.zero in
    let m = ref 0. in
    Array.iter
      (fun i ->
        let d = Pbc.min_image box pos.(i) anchor in
        acc := Vec3.add !acc (Vec3.scale masses.(i) d);
        m := !m +. masses.(i))
      g;
    Vec3.add anchor (Vec3.scale (1. /. !m) !acc)
  in
  {
    cv_name = "com_distance";
    value =
      (fun box pos -> Pbc.dist box (com box pos group_a) (com box pos group_b));
    gradient =
      (fun box pos ->
        let ca = com box pos group_a and cb = com box pos group_b in
        let d = Pbc.min_image box ca cb in
        let r = Float.max 1e-10 (Vec3.norm d) in
        let u = Vec3.scale (1. /. r) d in
        let ga =
          Array.to_list
            (Array.map
               (fun i -> (i, Vec3.scale (masses.(i) /. ma) u))
               group_a)
        in
        let gb =
          Array.to_list
            (Array.map
               (fun i -> (i, Vec3.scale (-.masses.(i) /. mb) u))
               group_b)
        in
        ga @ gb);
    flex_ops = 20. *. float_of_int (Array.length group_a + Array.length group_b);
  }

let coordination ~i ~others ~r0 =
  let term r =
    (* s(r) = (1 - u^6)/(1 - u^12) with u = r/r0; = 1/(1+u^6). *)
    let u6 = (r /. r0) ** 6. in
    1. /. (1. +. u6)
  in
  let dterm_dr r =
    let u = r /. r0 in
    let u6 = u ** 6. in
    -.6. *. u6 /. (r *. ((1. +. u6) ** 2.))
  in
  {
    cv_name = Printf.sprintf "coord(%d)" i;
    value =
      (fun box pos ->
        Array.fold_left
          (fun acc j -> acc +. term (Pbc.dist box pos.(i) pos.(j)))
          0. others);
    gradient =
      (fun box pos ->
        let gi = ref Vec3.zero in
        let rest =
          Array.to_list
            (Array.map
               (fun j ->
                 let d = Pbc.min_image box pos.(i) pos.(j) in
                 let r = Float.max 1e-10 (Vec3.norm d) in
                 let coeff = dterm_dr r /. r in
                 let g = Vec3.scale coeff d in
                 gi := Vec3.add !gi g;
                 (j, Vec3.neg g))
               others)
        in
        (i, !gi) :: rest);
    flex_ops = 40. *. float_of_int (Array.length others);
  }

let angle ~i ~j ~k =
  let geometry box (pos : Vec3.t array) =
    let rij = Pbc.min_image box pos.(i) pos.(j) in
    let rkj = Pbc.min_image box pos.(k) pos.(j) in
    let nij = Vec3.norm rij and nkj = Vec3.norm rkj in
    let cos_t =
      Float.max (-1.) (Float.min 1. (Vec3.dot rij rkj /. (nij *. nkj)))
    in
    (rij, rkj, nij, nkj, cos_t)
  in
  {
    cv_name = Printf.sprintf "angle(%d,%d,%d)" i j k;
    value =
      (fun box pos ->
        let _, _, _, _, cos_t = geometry box pos in
        acos cos_t);
    gradient =
      (fun box pos ->
        let rij, rkj, nij, nkj, cos_t = geometry box pos in
        (* d theta / d r = -(1/sin) d cos / d r. *)
        let sin_t = Float.max 1e-8 (sqrt (1. -. (cos_t *. cos_t))) in
        let gi =
          Vec3.scale
            (-1. /. (sin_t *. nij))
            (Vec3.sub (Vec3.scale (1. /. nkj) rkj)
               (Vec3.scale (cos_t /. nij) rij))
        in
        let gk =
          Vec3.scale
            (-1. /. (sin_t *. nkj))
            (Vec3.sub (Vec3.scale (1. /. nij) rij)
               (Vec3.scale (cos_t /. nkj) rkj))
        in
        let gj = Vec3.neg (Vec3.add gi gk) in
        [ (i, gi); (j, gj); (k, gk) ]);
    flex_ops = 60.;
  }

let dihedral ~i ~j ~k ~l =
  (* Shared geometry with the bonded torsion machinery (Blondel-Karplus
     gradients); duplicated here because the bonded module applies forces
     directly while a CV must expose the raw gradient. *)
  let geometry box (pos : Vec3.t array) =
    let b1 = Pbc.min_image box pos.(j) pos.(i) in
    let b2 = Pbc.min_image box pos.(k) pos.(j) in
    let b3 = Pbc.min_image box pos.(l) pos.(k) in
    let n1 = Vec3.cross b1 b2 in
    let n2 = Vec3.cross b2 b3 in
    (b1, b2, b3, n1, n2)
  in
  {
    cv_name = Printf.sprintf "dihedral(%d,%d,%d,%d)" i j k l;
    value =
      (fun box pos ->
        let _, b2, _, n1, n2 = geometry box pos in
        let n1n = Vec3.norm n1 and n2n = Vec3.norm n2 in
        if n1n <= 1e-10 || n2n <= 1e-10 then 0.
        else begin
          let b2n = Vec3.norm b2 in
          let m1 = Vec3.cross n1 (Vec3.scale (1. /. b2n) b2) in
          let x = Vec3.dot n1 n2 /. (n1n *. n2n) in
          let y = Vec3.dot m1 n2 /. (n1n *. n2n) in
          atan2 y x
        end);
    gradient =
      (fun box pos ->
        let b1, b2, b3, n1, n2 = geometry box pos in
        let n1n = Vec3.norm n1 and n2n = Vec3.norm n2 in
        if n1n <= 1e-10 || n2n <= 1e-10 then []
        else begin
          let b2n = Vec3.norm b2 in
          (* dphi/dr: the Blondel-Karplus force expressions divided by
             -dU/dphi, i.e. gi = +|b2| n1 / |n1|^2 etc. *)
          let gi = Vec3.scale (b2n /. (n1n *. n1n)) n1 in
          let gl = Vec3.scale (-.b2n /. (n2n *. n2n)) n2 in
          let p = -.(Vec3.dot b1 b2) /. (b2n *. b2n) in
          let q = -.(Vec3.dot b3 b2) /. (b2n *. b2n) in
          let sv = Vec3.sub (Vec3.scale p gi) (Vec3.scale q gl) in
          let gj = Vec3.sub sv gi in
          let gk = Vec3.neg (Vec3.add sv gl) in
          [ (i, gi); (j, gj); (k, gk); (l, gl) ]
        end);
    flex_ops = 90.;
  }

let gyration_radius ~atoms ~masses =
  if Array.length atoms < 2 then invalid_arg "Cv.gyration_radius: need >= 2";
  let total_mass = Array.fold_left (fun a i -> a +. masses.(i)) 0. atoms in
  (* Work in displacements from the first atom to stay PBC-safe. *)
  let rel box (pos : Vec3.t array) =
    let anchor = pos.(atoms.(0)) in
    Array.map (fun i -> Pbc.min_image box pos.(i) anchor) atoms
  in
  let com_of rels =
    let acc = ref Vec3.zero in
    Array.iteri
      (fun a d -> acc := Vec3.axpy masses.(atoms.(a)) d !acc)
      rels;
    Vec3.scale (1. /. total_mass) !acc
  in
  let rg_of rels =
    let com = com_of rels in
    let s = ref 0. in
    Array.iteri
      (fun a d -> s := !s +. (masses.(atoms.(a)) *. Vec3.dist2 d com))
      rels;
    sqrt (!s /. total_mass)
  in
  {
    cv_name = "rg";
    value = (fun box pos -> rg_of (rel box pos));
    gradient =
      (fun box pos ->
        let rels = rel box pos in
        let com = com_of rels in
        let rg = Float.max 1e-10 (rg_of rels) in
        (* d Rg / d r_i = m_i (r_i - com) / (M Rg). *)
        Array.to_list
          (Array.mapi
             (fun a i ->
               ( i,
                 Vec3.scale
                   (masses.(i) /. (total_mass *. rg))
                   (Vec3.sub rels.(a) com) ))
             atoms));
    flex_ops = 15. *. float_of_int (Array.length atoms);
  }

let apply_bias cv k center last box positions (acc : Mdsp_ff.Bonded.accum) =
  let v = cv.value box positions in
  (match last with Some r -> r := v | None -> ());
  let c = center () in
  let dv = v -. c in
  let e = k *. dv *. dv in
  let coeff = -2. *. k *. dv in
  List.iter
    (fun (idx, g) ->
      acc.forces.(idx) <- Vec3.add acc.forces.(idx) (Vec3.scale coeff g))
    (cv.gradient box positions);
  e

let harmonic_bias ~name ~cv ~k ~center =
  {
    Mdsp_md.Force_calc.bias_name = name;
    bias_compute = apply_bias cv k center None;
  }

let harmonic_bias_tracked ~name ~cv ~k ~center =
  let last = ref nan in
  ( {
      Mdsp_md.Force_calc.bias_name = name;
      bias_compute = apply_bias cv k center (Some last);
    },
    fun () -> !last )
