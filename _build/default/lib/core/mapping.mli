(** Mapping methods onto machine resources.

    The heart of the paper's claim: each extended method decomposes into
    (a) extra table passes through the hardwired pipelines, (b) extra
    programmable-core work, and (c) extra communication — and those
    increments are small, so the extended methods run at close to plain-MD
    speed. This module produces the adjusted workload for the performance
    model and the E6/E7 overhead and breakdown tables. *)

type method_cost = {
  method_name : string;
  flex_ops_per_step : float;
  pair_passes : float;  (** multiplier on the pair-pipeline workload *)
  bytes_per_step : float;  (** extra network traffic per step *)
}

(** Plain MD: the identity mapping. *)
val plain : method_cost

val of_restraint : Kernel.t -> method_cost
val of_metadynamics : Metadynamics.t -> method_cost
val of_smd : Smd.t -> method_cost
val of_tempering : Tempering.t -> method_cost
val of_remd : Remd.t -> n_atoms:int -> method_cost
val of_fep : Fep.topology_info -> method_cost
val of_tamd : Tamd.t -> method_cost
val of_amd : Amd.t -> n_atoms:int -> method_cost

(** Apply a method's increments to a baseline workload. *)
val apply :
  method_cost -> Mdsp_machine.Perf.workload -> Mdsp_machine.Perf.workload

(** [overhead cfg base cost] is
    [(step time with method / plain step time) - 1]. *)
val overhead :
  Mdsp_machine.Config.t -> Mdsp_machine.Perf.workload -> method_cost -> float

type row = {
  name : string;
  breakdown : Mdsp_machine.Perf.breakdown;
  ns_per_day : float;
  overhead_pct : float;
}

(** Evaluate a list of methods against a baseline workload on a machine. *)
val table :
  Mdsp_machine.Config.t -> Mdsp_machine.Perf.workload -> method_cost list ->
  row list
