open Mdsp_util

type hill = { c1 : float; c2 : float; height : float }

type t = {
  cv1 : Cv.t;
  cv2 : Cv.t;
  sigma1 : float;
  sigma2 : float;
  w0 : float;
  stride : int;
  well_tempered : float option;
  temp : float;
  mutable hills : hill list;
  mutable n_hills : int;
}

let create ?well_tempered ~cv1 ~cv2 ~sigma1 ~sigma2 ~height ~stride ~temp () =
  if sigma1 <= 0. || sigma2 <= 0. then
    invalid_arg "Metadynamics2.create: sigmas must be positive";
  if height <= 0. then invalid_arg "Metadynamics2.create: height";
  if stride <= 0 then invalid_arg "Metadynamics2.create: stride";
  {
    cv1;
    cv2;
    sigma1;
    sigma2;
    w0 = height;
    stride;
    well_tempered;
    temp;
    hills = [];
    n_hills = 0;
  }

let bias_energy t s1 s2 =
  List.fold_left
    (fun acc h ->
      let d1 = (s1 -. h.c1) /. t.sigma1 in
      let d2 = (s2 -. h.c2) /. t.sigma2 in
      acc +. (h.height *. exp (-0.5 *. ((d1 *. d1) +. (d2 *. d2)))))
    0. t.hills

(* (dV/ds1, dV/ds2). *)
let bias_gradient t s1 s2 =
  List.fold_left
    (fun (g1, g2) h ->
      let d1 = (s1 -. h.c1) /. t.sigma1 in
      let d2 = (s2 -. h.c2) /. t.sigma2 in
      let e = h.height *. exp (-0.5 *. ((d1 *. d1) +. (d2 *. d2))) in
      (g1 -. (e *. d1 /. t.sigma1), g2 -. (e *. d2 /. t.sigma2)))
    (0., 0.) t.hills

let bias t =
  {
    Mdsp_md.Force_calc.bias_name = "metadynamics2";
    bias_compute =
      (fun box positions acc ->
        let s1 = t.cv1.Cv.value box positions in
        let s2 = t.cv2.Cv.value box positions in
        let e = bias_energy t s1 s2 in
        let dv1, dv2 = bias_gradient t s1 s2 in
        (* Force on the atoms: -dV/ds * ds/dr for each CV. *)
        List.iter
          (fun (i, g) ->
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.axpy (-.dv1) g acc.Mdsp_ff.Bonded.forces.(i))
          (t.cv1.Cv.gradient box positions);
        List.iter
          (fun (i, g) ->
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.axpy (-.dv2) g acc.Mdsp_ff.Bonded.forces.(i))
          (t.cv2.Cv.gradient box positions);
        e);
  }

let deposit t s1 s2 =
  let height =
    match t.well_tempered with
    | None -> t.w0
    | Some delta_t ->
        t.w0 *. exp (-.bias_energy t s1 s2 /. (Units.k_b *. delta_t))
  in
  t.hills <- { c1 = s1; c2 = s2; height } :: t.hills;
  t.n_hills <- t.n_hills + 1

let attach t eng =
  Mdsp_md.Force_calc.add_bias (Mdsp_md.Engine.force_calc eng) (bias t);
  Mdsp_md.Engine.add_post_step eng ~name:"metadynamics2" (fun eng ->
      if Mdsp_md.Engine.steps_done eng mod t.stride = 0 then begin
        let st = Mdsp_md.Engine.state eng in
        let s1 =
          t.cv1.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions
        in
        let s2 =
          t.cv2.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions
        in
        deposit t s1 s2
      end)

let n_hills t = t.n_hills

let scale t =
  match t.well_tempered with
  | None -> 1.
  | Some delta_t -> (t.temp +. delta_t) /. delta_t

let free_energy_surface t ~lo1 ~hi1 ~bins1 ~lo2 ~hi2 ~bins2 =
  let w1 = (hi1 -. lo1) /. float_of_int bins1 in
  let w2 = (hi2 -. lo2) /. float_of_int bins2 in
  let sc = scale t in
  Array.init bins1 (fun a ->
      let s1 = lo1 +. ((float_of_int a +. 0.5) *. w1) in
      Array.init bins2 (fun b ->
          let s2 = lo2 +. ((float_of_int b +. 0.5) *. w2) in
          (s1, s2, -.sc *. bias_energy t s1 s2)))

let ridge_path t ~lo1 ~hi1 ~bins1 ~lo2 ~hi2 ~bins2 =
  let surface = free_energy_surface t ~lo1 ~hi1 ~bins1 ~lo2 ~hi2 ~bins2 in
  Array.map
    (fun column ->
      let s1, _, _ = column.(0) in
      let best =
        Array.fold_left
          (fun (bs2, bf) (_, s2, f) -> if f < bf then (s2, f) else (bs2, bf))
          (0., infinity) column
      in
      (s1, fst best))
    surface

let flex_ops_per_step t = t.cv1.Cv.flex_ops +. t.cv2.Cv.flex_ops +. 300.
