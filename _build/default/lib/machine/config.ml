type t = {
  name : string;
  nodes : int * int * int;
  clock_ghz : float;
  ppips_per_node : int;
  ppip_pairs_per_cycle : float;
  flex_cores_per_node : int;
  flex_ops_per_cycle : float;
  link_gb_s : float;
  links_per_node : int;
  hop_latency_ns : float;
  bytes_per_atom : int;
  sync_latency_ns : float;
  table_sram_bytes : int;
}

let node_count t =
  let x, y, z = t.nodes in
  x * y * z

let pair_throughput t =
  float_of_int (node_count t)
  *. float_of_int t.ppips_per_node
  *. t.ppip_pairs_per_cycle *. t.clock_ghz *. 1e9

let flex_throughput t =
  float_of_int (node_count t)
  *. float_of_int t.flex_cores_per_node
  *. t.flex_ops_per_cycle *. t.clock_ghz *. 1e9

let anton_like ?(nodes = (8, 8, 8)) () =
  {
    name = "anton-like";
    nodes;
    clock_ghz = 0.8;
    ppips_per_node = 32;
    ppip_pairs_per_cycle = 1.0;
    flex_cores_per_node = 12;
    flex_ops_per_cycle = 4.0;
    link_gb_s = 25.0;
    links_per_node = 6;
    hop_latency_ns = 50.0;
    bytes_per_atom = 16;
    sync_latency_ns = 200.0;
    table_sram_bytes = 256 * 1024;
  }

let max_hops t =
  let x, y, z = t.nodes in
  (x / 2) + (y / 2) + (z / 2)
