(** Flexible-subsystem budget accounting.

    The programmable cores have a hard per-step cycle budget set by the
    step time the pair pipelines and network allow. Methods that add
    programmable work (kernels, CV evaluation, hill sums) must fit in the
    slack or they lengthen the step. This module quantifies that: given a
    machine and a workload, how many spare flexible-subsystem operations
    per step exist, and does a given method fit? *)

type budget = {
  ops_available : float;
      (** flex ops/step the subsystem can execute within the current step
          time *)
  ops_used : float;  (** baseline bonded + integration + constraint work *)
  ops_slack : float;  (** available - used (>= 0) *)
  slack_fraction : float;  (** slack / available *)
}

(** Budget of the baseline workload on a machine. *)
val budget : Config.t -> Perf.workload -> budget

(** [fits cfg w ~extra_ops] is true if a method adding [extra_ops] per step
    fits in the slack without lengthening the step. *)
val fits : Config.t -> Perf.workload -> extra_ops:float -> bool

(** Largest per-step op count that still fits. *)
val headroom : Config.t -> Perf.workload -> float
