lib/machine/config.mli:
