lib/machine/config.ml:
