lib/machine/htis.mli: Config Interp_table Mdsp_ff Mdsp_space Mdsp_util Pbc Vec3
