lib/machine/htis.ml: Array Config Fixed Fun Int64 Interp_table Mdsp_ff Mdsp_space Mdsp_util Pbc Units Vec3
