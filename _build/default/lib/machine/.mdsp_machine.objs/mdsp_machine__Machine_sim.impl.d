lib/machine/machine_sim.ml: Array Fixed Htis Int64 Interp_table List Mdsp_space Mdsp_util Pbc Units Vec3
