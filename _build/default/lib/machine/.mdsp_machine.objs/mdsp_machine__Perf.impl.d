lib/machine/perf.ml: Config Float Mdsp_ff Mdsp_util
