lib/machine/interp_table.ml: Array Fixed Float Mdsp_util
