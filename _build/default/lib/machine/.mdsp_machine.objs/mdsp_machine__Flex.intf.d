lib/machine/flex.mli: Config Perf
