lib/machine/interp_table.mli: Mdsp_util
