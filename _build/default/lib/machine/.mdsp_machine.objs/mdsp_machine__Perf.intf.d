lib/machine/perf.mli: Config Mdsp_ff Mdsp_util
