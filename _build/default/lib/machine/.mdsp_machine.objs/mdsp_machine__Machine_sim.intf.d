lib/machine/machine_sim.mli: Fixed Htis Mdsp_space Mdsp_util Pbc Vec3
