lib/machine/flex.ml: Config Float Perf
