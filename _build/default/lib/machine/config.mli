(** Static description of the special-purpose machine.

    Numbers are configurable; the defaults give an Anton-class machine of
    512 nodes, each with 32 hardwired pairwise point-interaction pipelines
    (PPIPs) and a programmable "flexible" subsystem, connected as a 3D torus.
    These are modeling knobs, not measurements of any real machine. *)

type t = {
  name : string;
  nodes : int * int * int;  (** torus dimensions *)
  clock_ghz : float;
  ppips_per_node : int;
  ppip_pairs_per_cycle : float;  (** pair interactions per PPIP per cycle *)
  flex_cores_per_node : int;
  flex_ops_per_cycle : float;  (** arithmetic ops per flexible core per cycle *)
  link_gb_s : float;  (** one torus link, one direction *)
  links_per_node : int;  (** usable links for injection (6 on a 3D torus) *)
  hop_latency_ns : float;
  bytes_per_atom : int;  (** position + id payload per imported atom *)
  sync_latency_ns : float;  (** global barrier cost per stage *)
  table_sram_bytes : int;
      (** SRAM available per node for interaction tables *)
}

val node_count : t -> int

(** Aggregate pair-interaction throughput, pairs/second. *)
val pair_throughput : t -> float

(** Aggregate flexible-subsystem throughput, ops/second. *)
val flex_throughput : t -> float

(** Anton-class presets. [nodes] defaults to (8, 8, 8). *)
val anton_like : ?nodes:int * int * int -> unit -> t

(** Diameter (max hop count) of the torus. *)
val max_hops : t -> int

