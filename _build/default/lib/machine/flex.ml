type budget = {
  ops_available : float;
  ops_used : float;
  ops_slack : float;
  slack_fraction : float;
}

let baseline_ops (w : Perf.workload) =
  (float_of_int w.Perf.bonded_terms *. 60.)
  +. (float_of_int w.Perf.n_atoms *. 40.)
  +. (float_of_int w.Perf.n_constraints *. 50.)
  +. w.Perf.flex_ops_per_step

let budget cfg w =
  let b = Perf.step_time cfg w in
  let clock_hz = cfg.Config.clock_ghz *. 1e9 in
  let node_throughput =
    float_of_int cfg.Config.flex_cores_per_node
    *. cfg.Config.flex_ops_per_cycle *. clock_hz
  in
  let nodes = float_of_int (Config.node_count cfg) in
  (* The flexible subsystem can compute during the whole step except the
     serial sync tail. *)
  let window = Float.max 0. (b.Perf.step_s -. b.Perf.sync_s) in
  let ops_available = window *. node_throughput *. nodes in
  let ops_used = baseline_ops w in
  let ops_slack = Float.max 0. (ops_available -. ops_used) in
  {
    ops_available;
    ops_used;
    ops_slack;
    slack_fraction =
      (if ops_available > 0. then ops_slack /. ops_available else 0.);
  }

let fits cfg w ~extra_ops = extra_ops <= (budget cfg w).ops_slack
let headroom cfg w = (budget cfg w).ops_slack
