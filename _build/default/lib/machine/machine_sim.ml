open Mdsp_util

type result = {
  forces : Vec3.t array;
  energy : float;
  pairs_per_node : int array;
}

let compute ?(format = Fixed.force_format) ~nodes ts ~types ~charges ~cutoff
    box nlist positions =
  let n = Array.length positions in
  let decomp =
    Mdsp_space.Decomp.create box ~nodes ~cutoff
      ~policy:Mdsp_space.Decomp.Half_shell
  in
  let n_nodes = Mdsp_space.Decomp.node_count decomp in
  (* Assign each pair to the node owning its first atom (the simplified
     ownership rule; any deterministic rule preserves the property). *)
  let pairs = Mdsp_space.Neighbor_list.pairs nlist in
  let node_pairs = Array.make n_nodes [] in
  Array.iter
    (fun (i, j) ->
      let node = Mdsp_space.Decomp.owner decomp positions.(i) in
      node_pairs.(node) <- (i, j) :: node_pairs.(node))
    pairs;
  (* Per-node fixed-point accumulation. *)
  let fmt = format in
  let totals_x = Array.make n 0L in
  let totals_y = Array.make n 0L in
  let totals_z = Array.make n 0L in
  let total_e = ref 0L in
  let pairs_per_node = Array.make n_nodes 0 in
  let rc2 = cutoff *. cutoff in
  Array.iteri
    (fun node plist ->
      pairs_per_node.(node) <- List.length plist;
      (* Node-local accumulators. *)
      let fx = Array.make n 0L in
      let fy = Array.make n 0L in
      let fz = Array.make n 0L in
      let e_acc = ref 0L in
      List.iter
        (fun (i, j) ->
          let d = Pbc.min_image box positions.(i) positions.(j) in
          let r2 = Vec3.norm2 d in
          if r2 < rc2 then begin
            let e, f_over_r =
              let e_lj, f_lj =
                Interp_table.eval ts.Htis.lj.(types.(i)).(types.(j)) r2
              in
              match ts.Htis.electrostatic with
              | None -> (e_lj, f_lj)
              | Some es ->
                  let qq = Units.coulomb *. charges.(i) *. charges.(j) in
                  if qq = 0. then (e_lj, f_lj)
                  else begin
                    let e_es, f_es = Interp_table.eval es r2 in
                    (e_lj +. (qq *. e_es), f_lj +. (qq *. f_es))
                  end
            in
            let gx = Fixed.of_float fmt (f_over_r *. d.Vec3.x) in
            let gy = Fixed.of_float fmt (f_over_r *. d.Vec3.y) in
            let gz = Fixed.of_float fmt (f_over_r *. d.Vec3.z) in
            fx.(i) <- Fixed.add fmt fx.(i) gx;
            fy.(i) <- Fixed.add fmt fy.(i) gy;
            fz.(i) <- Fixed.add fmt fz.(i) gz;
            fx.(j) <- Fixed.add fmt fx.(j) (Int64.neg gx);
            fy.(j) <- Fixed.add fmt fy.(j) (Int64.neg gy);
            fz.(j) <- Fixed.add fmt fz.(j) (Int64.neg gz);
            e_acc := Fixed.add fmt !e_acc (Fixed.of_float fmt e)
          end)
        plist;
      (* "Network reduction": combine node partials, still in fixed point. *)
      for i = 0 to n - 1 do
        totals_x.(i) <- Fixed.add fmt totals_x.(i) fx.(i);
        totals_y.(i) <- Fixed.add fmt totals_y.(i) fy.(i);
        totals_z.(i) <- Fixed.add fmt totals_z.(i) fz.(i)
      done;
      total_e := Fixed.add fmt !total_e !e_acc)
    node_pairs;
  let forces =
    Array.init n (fun i ->
        Vec3.make
          (Fixed.to_float fmt totals_x.(i))
          (Fixed.to_float fmt totals_y.(i))
          (Fixed.to_float fmt totals_z.(i)))
  in
  { forces; energy = Fixed.to_float fmt !total_e; pairs_per_node }

let imbalance r =
  let n = Array.length r.pairs_per_node in
  if n = 0 then 1.
  else begin
    let total = Array.fold_left ( + ) 0 r.pairs_per_node in
    let mean = float_of_int total /. float_of_int n in
    if mean = 0. then 1.
    else
      float_of_int (Array.fold_left max 0 r.pairs_per_node) /. mean
  end
