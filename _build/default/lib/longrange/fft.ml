let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let fft_1d ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.fft_1d: length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft.fft_1d: length must be a power of 2";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Danielson–Lanczos butterflies. *)
  let mmax = ref 1 in
  while !mmax < n do
    let istep = !mmax * 2 in
    let theta = float_of_int sign *. Float.pi /. float_of_int !mmax in
    let wpr = -2. *. (sin (0.5 *. theta) ** 2.) in
    let wpi = sin theta in
    let wr = ref 1. and wi = ref 0. in
    for m = 0 to !mmax - 1 do
      let i = ref m in
      while !i < n do
        let k = !i + !mmax in
        let tr = (!wr *. re.(k)) -. (!wi *. im.(k)) in
        let ti = (!wr *. im.(k)) +. (!wi *. re.(k)) in
        re.(k) <- re.(!i) -. tr;
        im.(k) <- im.(!i) -. ti;
        re.(!i) <- re.(!i) +. tr;
        im.(!i) <- im.(!i) +. ti;
        i := !i + istep
      done;
      let wtemp = !wr in
      wr := (!wr *. (1. +. wpr)) -. (!wi *. wpi);
      wi := (!wi *. (1. +. wpr)) +. (wtemp *. wpi)
    done;
    mmax := istep
  done

let fft_3d ~sign ~nx ~ny ~nz re im =
  let total = nx * ny * nz in
  if Array.length re <> total || Array.length im <> total then
    invalid_arg "Fft.fft_3d: array size mismatch";
  let idx x y z = x + (nx * (y + (ny * z))) in
  (* Transform along x (contiguous). *)
  let bx_re = Array.make nx 0. and bx_im = Array.make nx 0. in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      let base = idx 0 y z in
      Array.blit re base bx_re 0 nx;
      Array.blit im base bx_im 0 nx;
      fft_1d ~sign bx_re bx_im;
      Array.blit bx_re 0 re base nx;
      Array.blit bx_im 0 im base nx
    done
  done;
  (* Along y. *)
  let by_re = Array.make ny 0. and by_im = Array.make ny 0. in
  for z = 0 to nz - 1 do
    for x = 0 to nx - 1 do
      for y = 0 to ny - 1 do
        let k = idx x y z in
        by_re.(y) <- re.(k);
        by_im.(y) <- im.(k)
      done;
      fft_1d ~sign by_re by_im;
      for y = 0 to ny - 1 do
        let k = idx x y z in
        re.(k) <- by_re.(y);
        im.(k) <- by_im.(y)
      done
    done
  done;
  (* Along z. *)
  let bz_re = Array.make nz 0. and bz_im = Array.make nz 0. in
  for y = 0 to ny - 1 do
    for x = 0 to nx - 1 do
      for z = 0 to nz - 1 do
        let k = idx x y z in
        bz_re.(z) <- re.(k);
        bz_im.(z) <- im.(k)
      done;
      fft_1d ~sign bz_re bz_im;
      for z = 0 to nz - 1 do
        let k = idx x y z in
        re.(k) <- bz_re.(z);
        im.(k) <- bz_im.(z)
      done
    done
  done
