(** Self-contained complex FFT (iterative radix-2) and a 3D transform.

    Sufficient for the grid sizes used by the Gaussian-split-Ewald solver
    (all dimensions must be powers of two). Data layout: separate [re]/[im]
    float arrays; the 3D transform uses row-major order with x fastest. *)

(** In-place 1D FFT of length [n] (power of two). [sign] is -1 for the
    forward transform, +1 for the inverse; the inverse is unscaled (caller
    divides by n). *)
val fft_1d : sign:int -> float array -> float array -> unit

(** [fft_3d ~sign ~nx ~ny ~nz re im] transforms in place; unscaled. *)
val fft_3d :
  sign:int -> nx:int -> ny:int -> nz:int -> float array -> float array -> unit

(** True if [n] is a power of two (and positive). *)
val is_pow2 : int -> bool

(** Smallest power of two >= n. *)
val next_pow2 : int -> int
