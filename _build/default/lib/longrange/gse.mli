(** Gaussian-split Ewald (GSE)–style grid electrostatics.

    This is the machine-friendly long-range solver: charges are spread onto
    a regular grid with Gaussians, the Poisson equation is solved in k-space
    by FFT with a modified influence function, and forces are interpolated
    back with the gradient of the same Gaussians. Combined with the
    real-space [erfc] term this reproduces classic Ewald up to controllable
    grid/spreading error — which is what the E3 experiment quantifies.
    The reciprocal scalar virial is accumulated (the total k-space kernel
    equals Ewald's, so the same per-mode formula applies), enabling
    constant-pressure runs with grid electrostatics.

    Grid dimensions must be powers of two. *)

open Mdsp_util

type t

(** [create ~beta ~grid:(nx, ny, nz) ?sigma_s ?support box]. [sigma_s]
    defaults to [1 / (2 sqrt 2 beta)] (must be <= 1/(2 beta)); [support] is
    the spreading truncation radius in units of [sigma_s], default 4. *)
val create :
  beta:float -> grid:int * int * int -> ?sigma_s:float -> ?support:float ->
  Pbc.t -> t

(** [reciprocal t charges positions acc] adds reciprocal-space forces and
    returns the reciprocal energy (self/excluded corrections not included —
    use {!Ewald.self_energy} and {!Ewald.excluded_correction}, which depend
    only on [beta]). *)
val reciprocal :
  t -> float array -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float

val beta : t -> float
val grid : t -> int * int * int

(** Number of grid points each charge spreads to (cost model input). *)
val support_points : t -> int
