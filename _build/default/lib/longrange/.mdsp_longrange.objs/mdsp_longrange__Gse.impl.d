lib/longrange/gse.ml: Array Fft Float Mdsp_ff Mdsp_util Pbc Units Vec3
