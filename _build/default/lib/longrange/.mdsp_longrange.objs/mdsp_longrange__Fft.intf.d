lib/longrange/fft.mli:
