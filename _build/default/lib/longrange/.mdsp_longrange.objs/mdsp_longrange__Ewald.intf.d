lib/longrange/ewald.mli: Mdsp_ff Mdsp_space Mdsp_util Pbc Vec3
