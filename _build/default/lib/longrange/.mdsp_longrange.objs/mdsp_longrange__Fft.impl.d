lib/longrange/fft.ml: Array Float
