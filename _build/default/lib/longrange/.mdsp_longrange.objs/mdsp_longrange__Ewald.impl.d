lib/longrange/ewald.ml: Array Float List Mdsp_ff Mdsp_space Mdsp_util Pbc Specfun Units Vec3
