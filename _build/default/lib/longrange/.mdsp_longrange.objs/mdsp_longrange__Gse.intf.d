lib/longrange/gse.mli: Mdsp_ff Mdsp_util Pbc Vec3
