open Mdsp_util

type kvec = { kx : float; ky : float; kz : float; a : float; k2 : float }

type t = { beta_ : float; kvecs : kvec array; volume : float; box : Pbc.t }

let create ~beta ~kmax box =
  if beta <= 0. then invalid_arg "Ewald.create: beta must be positive";
  if kmax < 1 then invalid_arg "Ewald.create: kmax must be >= 1";
  let open Pbc in
  let volume = Pbc.volume box in
  let two_pi = 2. *. Float.pi in
  let acc = ref [] in
  let kmax2 = kmax * kmax in
  for nx = -kmax to kmax do
    for ny = -kmax to kmax do
      for nz = -kmax to kmax do
        let n2 = (nx * nx) + (ny * ny) + (nz * nz) in
        if n2 > 0 && n2 <= kmax2 then begin
          let kx = two_pi *. float_of_int nx /. box.lx in
          let ky = two_pi *. float_of_int ny /. box.ly in
          let kz = two_pi *. float_of_int nz /. box.lz in
          let k2 = (kx *. kx) +. (ky *. ky) +. (kz *. kz) in
          let a = exp (-.k2 /. (4. *. beta *. beta)) /. k2 in
          acc := { kx; ky; kz; a; k2 } :: !acc
        end
      done
    done
  done;
  { beta_ = beta; kvecs = Array.of_list !acc; volume; box }

let beta t = t.beta_
let k_count t = Array.length t.kvecs

let reciprocal t charges positions (acc : Mdsp_ff.Bonded.accum) =
  let n = Array.length positions in
  let pref = 2. *. Float.pi /. t.volume *. Units.coulomb in
  let energy = ref 0. in
  let cos_k = Array.make n 0. and sin_k = Array.make n 0. in
  Array.iter
    (fun kv ->
      let re = ref 0. and im = ref 0. in
      for i = 0 to n - 1 do
        let p = positions.(i) in
        let phase =
          (kv.kx *. p.Vec3.x) +. (kv.ky *. p.Vec3.y) +. (kv.kz *. p.Vec3.z)
        in
        let c = cos phase and s = sin phase in
        cos_k.(i) <- c;
        sin_k.(i) <- s;
        re := !re +. (charges.(i) *. c);
        im := !im +. (charges.(i) *. s)
      done;
      let s2 = (!re *. !re) +. (!im *. !im) in
      let e_k = pref *. kv.a *. s2 in
      energy := !energy +. e_k;
      (* Scalar virial of this k term. *)
      acc.virial <-
        acc.virial
        +. (e_k *. (1. -. (kv.k2 /. (2. *. t.beta_ *. t.beta_))));
      let fpref = 2. *. pref *. kv.a in
      for i = 0 to n - 1 do
        let coeff =
          fpref *. charges.(i) *. ((sin_k.(i) *. !re) -. (cos_k.(i) *. !im))
        in
        acc.forces.(i) <-
          Vec3.add acc.forces.(i)
            (Vec3.make (coeff *. kv.kx) (coeff *. kv.ky) (coeff *. kv.kz))
      done)
    t.kvecs;
  !energy

let self_energy t charges =
  let sum_q2 = Array.fold_left (fun a q -> a +. (q *. q)) 0. charges in
  -.t.beta_ /. sqrt Float.pi *. sum_q2 *. Units.coulomb

let excluded_correction t box charges positions exclusions
    (acc : Mdsp_ff.Bonded.accum) =
  let two_over_sqrt_pi = 2. /. sqrt Float.pi in
  let energy = ref 0. in
  List.iter
    (fun (i, j) ->
      let d = Pbc.min_image box positions.(i) positions.(j) in
      let r2 = Vec3.norm2 d in
      let r = sqrt r2 in
      let qq = Units.coulomb *. charges.(i) *. charges.(j) in
      let erf_br = Specfun.erf (t.beta_ *. r) in
      let e = qq *. erf_br /. r in
      energy := !energy -. e;
      (* Remove the reciprocal-space force between the excluded pair. *)
      let f_over_r =
        qq
        *. ((erf_br /. r)
           -. (two_over_sqrt_pi *. t.beta_ *. exp (-.t.beta_ *. t.beta_ *. r2))
           )
        /. r2
      in
      let f = Vec3.scale (-.f_over_r) d in
      acc.forces.(i) <- Vec3.add acc.forces.(i) f;
      acc.forces.(j) <- Vec3.sub acc.forces.(j) f;
      acc.virial <- acc.virial +. Vec3.dot f d)
    (Mdsp_space.Exclusions.pairs exclusions);
  !energy

let total_reference t box charges positions =
  let n = Array.length positions in
  let acc = Mdsp_ff.Bonded.make_accum n in
  let e_rec = reciprocal t charges positions acc in
  let e_self = self_energy t charges in
  (* Real-space sum over periodic images (shells of +-2 boxes), including
     interactions of each charge with its own images. The shell range is
     adequate down to beta * L >= ~2.5; smaller beta values converge too
     slowly in real space to be useful anyway. *)
  let open Pbc in
  let e_real = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let qq = Units.coulomb *. charges.(i) *. charges.(j) in
      for nx = -2 to 2 do
        for ny = -2 to 2 do
          for nz = -2 to 2 do
            let skip = i = j && nx = 0 && ny = 0 && nz = 0 in
            if not skip then begin
              let d = Vec3.sub positions.(i) positions.(j) in
              let dx = d.Vec3.x +. (float_of_int nx *. box.lx) in
              let dy = d.Vec3.y +. (float_of_int ny *. box.ly) in
              let dz = d.Vec3.z +. (float_of_int nz *. box.lz) in
              let r = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
              (* Half weight: the double loop counts each pair twice. *)
              e_real :=
                !e_real +. (0.5 *. qq *. Specfun.erfc (t.beta_ *. r) /. r)
            end
          done
        done
      done
    done
  done;
  e_rec +. e_self +. !e_real
