(* Quickstart: build a system, run thermostatted MD, then swap the analytic
   pair evaluator for the machine's interpolation-table path and keep
   running — the whole engine is agnostic to which one is installed.

   Run with: dune exec examples/quickstart.exe *)

open Mdsp_workload
module E = Mdsp_md.Engine

let () =
  (* 1. A 500-atom Lennard-Jones fluid at liquid density. *)
  let sys = Workloads.lj_fluid ~n:500 () in
  Printf.printf "system: %s (%d atoms, box %s)\n" sys.Workloads.label
    (Mdsp_ff.Topology.n_atoms sys.Workloads.topo)
    (Format.asprintf "%a" Mdsp_util.Pbc.pp sys.Workloads.box);

  (* 2. An engine with a Langevin thermostat at 120 K, dt = 2 fs. *)
  let config =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Workloads.make_engine ~config sys in

  (* 3. Equilibrate and report. *)
  E.run eng 2000;
  Printf.printf "after 4 ps:  T = %6.1f K   PE = %10.2f kcal/mol   P = %8.1f atm\n"
    (E.temperature eng) (E.potential_energy eng) (E.pressure_atm eng);

  (* 4. Compile the force field into machine interpolation tables and swap
        the evaluator — the engine now runs "on the machine". *)
  let cutoff = (Mdsp_md.Force_calc.nlist (E.force_calc eng)
                |> Mdsp_space.Neighbor_list.cutoff) in
  let tables =
    Mdsp_core.Table.table_set_of_topology sys.Workloads.topo ~cutoff
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:2048 ()
  in
  let types =
    Array.map
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
      sys.Workloads.topo.Mdsp_ff.Topology.atoms
  in
  let charges = Mdsp_ff.Topology.charges sys.Workloads.topo in
  let machine_eval =
    Mdsp_machine.Htis.evaluator tables ~types ~charges ~cutoff
  in
  Mdsp_md.Force_calc.set_evaluator (E.force_calc eng) machine_eval;
  E.refresh_forces eng;
  E.run eng 2000;
  Printf.printf "on tables:   T = %6.1f K   PE = %10.2f kcal/mol   P = %8.1f atm\n"
    (E.temperature eng) (E.potential_energy eng) (E.pressure_atm eng);

  (* 5. What would this run at on the machine vs a cluster? *)
  let w =
    Mdsp_machine.Perf.of_system ~dt_fs:2.0 sys.Workloads.topo sys.Workloads.box
  in
  Printf.printf "modeled rates: machine %.0f ns/day, commodity cluster %.0f ns/day\n"
    (Mdsp_machine.Perf.ns_per_day (Mdsp_machine.Config.anton_like ()) w)
    (Mdsp_baseline.Cluster.ns_per_day (Mdsp_baseline.Cluster.commodity ()) w)
