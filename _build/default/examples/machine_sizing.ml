(* Using the performance model as a design tool: how big a machine does a
   target simulation rate require, and where do the cycles go? The same
   questions the hardware/software co-design in the paper answers.

   Run with: dune exec examples/machine_sizing.exe *)

open Mdsp_machine

let () =
  let n_atoms = 92_000 in
  let w =
    {
      (Perf.plain_workload ~n_atoms ~density:0.1 ~cutoff:9.0 ~dt_fs:2.5) with
      Perf.n_constraints = n_atoms;
      fft_grid = Some (128, 128, 128);
    }
  in
  Printf.printf "target workload: %d atoms, cutoff 9 A, dt 2.5 fs\n\n" n_atoms;
  Printf.printf "%-10s %12s %10s %10s %10s %10s\n" "torus" "ns/day" "pipes(us)"
    "flex(us)" "comm(us)" "lr(us)";
  List.iter
    (fun nodes ->
      let cfg = Config.anton_like ~nodes () in
      let b = Perf.step_time cfg w in
      let px, py, pz = nodes in
      Printf.printf "%-10s %12.0f %10.2f %10.2f %10.2f %10.2f\n"
        (Printf.sprintf "%dx%dx%d" px py pz)
        (Perf.ns_per_day cfg w)
        (b.Perf.htis_s *. 1e6) (b.Perf.flex_s *. 1e6) (b.Perf.comm_s *. 1e6)
        (b.Perf.fft_s *. 1e6))
    [ (2, 2, 2); (4, 4, 4); (8, 8, 8); (16, 8, 8) ];

  (* And the method question: can we afford metadynamics + tempering at
     512 nodes? *)
  let cfg = Config.anton_like () in
  let cv = Mdsp_core.Cv.distance ~i:0 ~j:1 in
  let meta =
    Mdsp_core.Metadynamics.create ~cv ~sigma:0.3 ~height:0.1 ~stride:100
      ~temp:300. ()
  in
  let temper =
    Mdsp_core.Tempering.create ~temps:[| 300.; 315.; 330. |] ~stride:200 ()
  in
  Printf.printf "\nmethod overheads at 8x8x8:\n";
  List.iter
    (fun cost ->
      Printf.printf "  %-22s %+.2f%%\n" cost.Mdsp_core.Mapping.method_name
        (100. *. Mdsp_core.Mapping.overhead cfg w cost))
    [
      Mdsp_core.Mapping.plain;
      Mdsp_core.Mapping.of_metadynamics meta;
      Mdsp_core.Mapping.of_tempering temper;
    ];
  Printf.printf
    "\nConclusion: the sampling methods are free at machine scale; size the\n\
     torus for the pair and long-range work.\n"
