(* Two independent free-energy routes over the same landscape — umbrella
   sampling + WHAM and well-tempered metadynamics — cross-checked against
   each other and the analytic answer. This is the kind of methodological
   workflow the extended machine makes routine.

   Run with: dune exec examples/free_energy_pipeline.exe *)

open Mdsp_workload
module E = Mdsp_md.Engine

let barrier = 3.0
let half_width = 2.5
let temp = 300.

let make_engine () =
  let sys = Workloads.double_well () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = temp;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  Workloads.make_engine ~config:cfg sys

let () =
  let cv = Mdsp_core.Cv.position ~axis:`X ~i:0 in

  (* Route 1: umbrella sampling + WHAM. *)
  Printf.printf "route 1: umbrella sampling (13 windows) + WHAM...\n%!";
  let centers = Array.init 13 (fun i -> -3.0 +. (0.5 *. float_of_int i)) in
  let plan =
    Mdsp_core.Umbrella.make_plan ~cv ~k:4.0 ~centers ~equil_steps:500
      ~sample_steps:4000 ~sample_stride:5
  in
  let results = Mdsp_core.Umbrella.run plan ~make_engine in
  let pmf = Mdsp_core.Umbrella.solve ~temp ~lo:(-3.4) ~hi:3.4 ~bins:34 results in

  (* Route 2: well-tempered metadynamics. *)
  Printf.printf "route 2: well-tempered metadynamics (240 ps)...\n%!";
  let eng = make_engine () in
  let meta =
    Mdsp_core.Metadynamics.create ~well_tempered:2700. ~cv ~sigma:0.25
      ~height:0.12 ~stride:50 ~temp ()
  in
  Mdsp_core.Metadynamics.attach meta eng;
  E.run eng 120_000;
  let fes = Mdsp_core.Metadynamics.free_energy_estimate meta ~lo:(-3.4) ~hi:3.4 ~bins:34 in
  let fes_min = Array.fold_left (fun a (_, f) -> Float.min a f) infinity fes in

  (* Compare. *)
  Printf.printf "\n%8s %12s %12s %12s\n" "x" "F_umbrella" "F_metad" "F_exact";
  Array.iteri
    (fun b f_w ->
      if (not (Float.is_nan f_w)) && b mod 2 = 0 then begin
        let x = pmf.Mdsp_analysis.Wham.centers.(b) in
        let _, f_m =
          Array.fold_left
            (fun (best, bf) (s, f) ->
              if abs_float (s -. x) < abs_float (best -. x) then (s, f)
              else (best, bf))
            (99., 0.) fes
        in
        Printf.printf "%8.2f %12.2f %12.2f %12.2f\n" x f_w (f_m -. fes_min)
          (Workloads.double_well_energy ~barrier ~half_width x)
      end)
    pmf.Mdsp_analysis.Wham.free_energy;
  Printf.printf
    "\nTwo methods, one machine mapping: biases run on the programmable\n\
     cores while the pair pipelines keep streaming.\n"
