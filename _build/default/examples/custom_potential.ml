(* The generality headline, end to end: define a force field the hardware
   designers never anticipated — a double-exponential "bonding" well plus a
   soft Gaussian shoulder — compile it into the pair pipelines'
   interpolation-table format, verify the fit, and run MD with it.

   Run with: dune exec examples/custom_potential.exe *)

open Mdsp_util
module E = Mdsp_md.Engine

(* A custom radial interaction, specified only as energy + f_over_r of the
   squared distance. Nothing else about the engine needs to know its form. *)
let my_potential r2 =
  let r = sqrt r2 in
  let well d r0 w = -.d *. exp (-.((r -. r0) ** 2.) /. (2. *. w *. w)) in
  let shoulder h r0 w = h *. exp (-.((r -. r0) ** 2.) /. (2. *. w *. w)) in
  let wall = 2000. *. exp (-3. *. r) in
  let e = wall +. shoulder 1.2 4.5 0.6 +. well 0.9 6.0 0.8 in
  (* -dU/dr, term by term. *)
  let minus_du_dr =
    (3. *. wall)
    +. (1.2 *. (r -. 4.5) /. 0.36 *. exp (-.((r -. 4.5) ** 2.) /. 0.72))
    -. (0.9 *. (r -. 6.0) /. 0.64 *. exp (-.((r -. 6.0) ** 2.) /. 1.28))
  in
  (e, minus_du_dr /. r)

let () =
  let cutoff = 9.0 in
  (* 1. Compile into the hardware table format and report the fit. *)
  let shifted r2 =
    let e, f = my_potential r2 in
    let e_cut, _ = my_potential (cutoff *. cutoff) in
    (e -. e_cut, f)
  in
  let widths = [ 256; 1024; 4096 ] in
  Printf.printf "compiling a custom potential into pipeline tables:\n";
  let table =
    List.fold_left
      (fun _ n ->
        let t = Mdsp_core.Table.compile ~r_min:1.0 ~r_cut:cutoff ~n shifted in
        let rep = Mdsp_core.Table.accuracy t shifted () in
        Printf.printf "  n = %5d   max rel force error %.2e\n" n
          rep.Mdsp_core.Table.max_rel_force;
        t)
      (Mdsp_core.Table.compile ~r_min:1.0 ~r_cut:cutoff ~n:256 shifted)
      widths
  in

  (* 2. Build a fluid of particles interacting ONLY through the table. *)
  let n = 300 in
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  for _ = 1 to n do
    ignore
      (Mdsp_ff.Topology.Builder.add_atom b ~mass:50. ~charge:0. ~type_id:0
         ~name:"X")
  done;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let box_l = 40.0 in
  let box = Pbc.cubic box_l in
  let rng = Rng.create 1 in
  let positions =
    Array.init n (fun _ ->
        Vec3.make
          (Rng.uniform_in rng 0. box_l)
          (Rng.uniform_in rng 0. box_l)
          (Rng.uniform_in rng 0. box_l))
  in
  let table_set =
    { Mdsp_machine.Htis.lj = [| [| table |] |]; electrostatic = None }
  in
  let evaluator =
    Mdsp_machine.Htis.evaluator table_set ~types:(Array.make n 0)
      ~charges:(Array.make n 0.) ~cutoff
  in
  let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box positions in
  let fc =
    Mdsp_md.Force_calc.create topo ~evaluator
      ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
  in
  let st =
    Mdsp_md.State.create ~positions ~masses:(Mdsp_ff.Topology.masses topo) ~box
  in
  Mdsp_md.State.thermalize st rng ~temp:250.;
  let cfg =
    {
      E.default_config with
      dt_fs = 4.0;
      temperature = 250.;
      thermostat = E.Langevin { gamma_fs = 0.01 };
    }
  in
  let eng = E.create topo fc st cfg in
  E.minimize eng ~steps:100;
  Mdsp_md.State.thermalize st rng ~temp:250.;
  E.refresh_forces eng;

  (* 3. Run and watch the custom fluid equilibrate; the "bond" well at 6 A
        should build up a coordination shell. *)
  let shell_count () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let r2 = Pbc.dist2 st.Mdsp_md.State.box st.Mdsp_md.State.positions.(i)
            st.Mdsp_md.State.positions.(j) in
        if r2 > 25. && r2 < 49. then incr c
      done
    done;
    !c
  in
  Printf.printf "\nrunning MD on the custom potential:\n";
  Printf.printf "  start:    PE = %8.2f   pairs in 5-7 A shell: %d\n"
    (E.potential_energy eng) (shell_count ());
  for k = 1 to 4 do
    E.run eng 1000;
    Printf.printf "  t=%2d ps:  PE = %8.2f   pairs in 5-7 A shell: %d   T = %.0f K\n"
      (k * 4) (E.potential_energy eng) (shell_count ()) (E.temperature eng)
  done;
  Printf.printf
    "\nThe pipelines never knew: any radial form is one table away.\n"
