(* Temperature replica exchange across a ladder of LJ fluids, with ladder
   diagnostics — the multi-replica workload the torus network model prices.

   Run with: dune exec examples/replica_exchange.exe *)

module E = Mdsp_md.Engine

let () =
  let temps = [| 120.; 130.; 141.; 153.; 166. |] in
  Printf.printf "building %d replicas of LJ-108...\n%!" (Array.length temps);
  let engines =
    Array.mapi
      (fun i t ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = t;
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(500 + i) sys)
      temps
  in
  Array.iter (fun e -> E.run e 1500) engines;

  let remd = Mdsp_core.Remd.create ~engines ~temps ~stride:50 ~seed:21 in
  Printf.printf "running 200 exchange sweeps (50 steps each)...\n%!";
  Mdsp_core.Remd.run remd ~sweeps:200;

  Printf.printf "\nneighbor-pair acceptance:\n";
  Array.iteri
    (fun i a ->
      Printf.printf "  %.0f K <-> %.0f K : %.2f\n" temps.(i) temps.(i + 1) a)
    (Mdsp_core.Remd.acceptance remd);

  Printf.printf "\nconfiguration walk (start rung -> current rung):\n";
  Array.iteri
    (fun c r -> Printf.printf "  config %d: rung %d\n" c r)
    (Mdsp_core.Remd.replica_of_config remd);

  (* What the exchanges cost on the machine. *)
  let bytes = Mdsp_core.Remd.method_bytes_per_step remd ~n_atoms:108 in
  Printf.printf
    "\nmachine mapping: %.0f extra bytes/step of exchange traffic per\n\
     replica partition — negligible against the import volume.\n"
    bytes
