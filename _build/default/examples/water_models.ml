(* Water models side by side: 3-site (TIP3P-class, charge on the oxygen)
   vs 4-site (TIP4P-class, charge on a massless virtual M site). The
   virtual-site machinery — placement, force spreading, integration
   exclusion — is exactly the kind of "method the hardware didn't
   anticipate" that the programmable cores absorb.

   Run with: dune exec examples/water_models.exe *)

open Mdsp_util
module E = Mdsp_md.Engine

let run_model name sys =
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 3000;
  (* O-O radial distribution over 50 frames. *)
  let topo = sys.Mdsp_workload.Workloads.topo in
  let oxygens =
    Array.of_list
      (List.filteri (fun _ i -> i >= 0)
         (List.filter (fun i ->
              topo.Mdsp_ff.Topology.atoms.(i).Mdsp_ff.Topology.name = "OW")
            (List.init (Mdsp_ff.Topology.n_atoms topo) Fun.id)))
  in
  let st = E.state eng in
  let sd =
    Mdsp_analysis.Structure.create
      ~r_max:(0.45 *. Pbc.min_edge st.Mdsp_md.State.box)
      ~bins:40
  in
  for _ = 1 to 50 do
    E.run eng 20;
    let s = E.state eng in
    Mdsp_analysis.Structure.sample sd s.Mdsp_md.State.box
      s.Mdsp_md.State.positions ~subset:oxygens ()
  done;
  let r_peak, g_peak = Mdsp_analysis.Structure.first_peak ~r_min:2. sd in
  let viol =
    Mdsp_md.Constraints.max_violation (E.constraints eng)
      (E.state eng).Mdsp_md.State.box (E.state eng).Mdsp_md.State.positions
  in
  Printf.printf
    "%-22s  T = %5.1f K   O-O g(r) peak: %.2f A (g = %.2f)   rigid to %.0e\n%!"
    name (E.temperature eng) r_peak g_peak viol;
  eng

let () =
  Printf.printf
    "comparing 3-site and 4-site rigid water (125 molecules, 6 ps):\n\n";
  let _ = run_model "TIP3P-class (3 sites)" (Mdsp_workload.Workloads.water_box ~n_side:5 ()) in
  let eng4 =
    run_model "TIP4P-class (4 sites)"
      (Mdsp_workload.Workloads.water_box_tip4p ~n_side:5 ())
  in
  (* Show the virtual sites doing their job. *)
  let st = E.state eng4 in
  let worst = ref 0. in
  for m = 0 to 124 do
    let d =
      Pbc.dist st.Mdsp_md.State.box
        st.Mdsp_md.State.positions.(4 * m)
        st.Mdsp_md.State.positions.((4 * m) + 3)
    in
    worst := Float.max !worst (abs_float (d -. Mdsp_ff.Water.Tip4p.om_dist))
  done;
  Printf.printf
    "\nall 125 M sites stay on the bisector at %.2f A from O (max dev %.1e A)\n"
    Mdsp_ff.Water.Tip4p.om_dist !worst;
  Printf.printf
    "— placed after every drift and their forces spread to O/H parents, on\n\
     the programmable cores; the pair pipelines see them as ordinary sites.\n";
  (* Both models should show the ~2.8 A first hydration shell. *)
  Printf.printf
    "\nBoth models produce the hallmark ~2.7-2.9 A first hydration shell.\n"
