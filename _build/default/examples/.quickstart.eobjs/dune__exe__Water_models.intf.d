examples/water_models.mli:
