examples/custom_potential.ml: Array List Mdsp_core Mdsp_ff Mdsp_machine Mdsp_md Mdsp_space Mdsp_util Pbc Printf Rng Vec3
