examples/replica_exchange.ml: Array Mdsp_core Mdsp_md Mdsp_workload Printf
