examples/replica_exchange.mli:
