examples/water_models.ml: Array Float Fun List Mdsp_analysis Mdsp_ff Mdsp_md Mdsp_util Mdsp_workload Pbc Printf
