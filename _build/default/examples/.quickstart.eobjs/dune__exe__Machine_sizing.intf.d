examples/machine_sizing.mli:
