examples/free_energy_pipeline.ml: Array Float Mdsp_analysis Mdsp_core Mdsp_md Mdsp_workload Printf Workloads
