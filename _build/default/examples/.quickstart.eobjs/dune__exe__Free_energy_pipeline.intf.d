examples/free_energy_pipeline.mli:
