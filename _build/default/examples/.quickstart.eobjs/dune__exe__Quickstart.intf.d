examples/quickstart.mli:
