examples/quickstart.ml: Array Format Mdsp_baseline Mdsp_core Mdsp_ff Mdsp_machine Mdsp_md Mdsp_space Mdsp_util Mdsp_workload Printf Workloads
