examples/custom_potential.mli:
