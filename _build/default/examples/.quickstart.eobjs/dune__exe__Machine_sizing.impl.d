examples/machine_sizing.ml: Config List Mdsp_core Mdsp_machine Perf Printf
