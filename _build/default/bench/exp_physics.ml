(* Experiment E12: physics sanity table — conservation, thermostats,
   barostat, constraints, plus long-range solver agreement. *)

open Mdsp_util
open Bench_common
module E = Mdsp_md.Engine

let nve_drift_per_ps eng steps dt_fs =
  let e0 = E.total_energy eng in
  let worst = ref 0. in
  let chunks = 10 in
  for _ = 1 to chunks do
    E.run eng (steps / chunks);
    worst :=
      Float.max !worst (abs_float (E.total_energy eng -. e0) /. abs_float e0)
  done;
  !worst /. (float_of_int steps *. dt_fs *. 1e-3)

let e12 () =
  section "E12" "Physics sanity of the MD substrate (Table V)";
  let t =
    T.create ~title:"Conservation / ensemble checks"
      ~columns:[ ("check", T.Left); ("measured", T.Right); ("target", T.Right) ]
  in
  (* NVE drift, LJ fluid. *)
  let eng = lj_engine ~n:108 ~equil:1500 () in
  let st = E.state eng in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let sys =
    { sys with Mdsp_workload.Workloads.positions = Array.copy st.Mdsp_md.State.positions }
  in
  let nve =
    Mdsp_workload.Workloads.make_engine
      ~config:{ E.default_config with dt_fs = 2.0; temperature = 120. }
      sys
  in
  Array.blit st.Mdsp_md.State.velocities 0
    (E.state nve).Mdsp_md.State.velocities 0 108;
  E.refresh_forces nve;
  let drift = nve_drift_per_ps nve 1000 2.0 in
  T.row t
    [ "NVE relative drift, LJ-108, dt=2fs"; Printf.sprintf "%.1e /ps" drift; "< 1e-3" ];
  (* NVE drift, rigid water. *)
  let weng =
    Mdsp_workload.Workloads.make_engine
      ~config:
        {
          E.default_config with
          dt_fs = 1.0;
          temperature = 300.;
          thermostat = E.Langevin { gamma_fs = 0.02 };
        }
      (Mdsp_workload.Workloads.water_box ~n_side:4 ())
  in
  E.run weng 2000;
  let st = E.state weng in
  let wsys = Mdsp_workload.Workloads.water_box ~n_side:4 () in
  let wsys =
    { wsys with Mdsp_workload.Workloads.positions = Array.copy st.Mdsp_md.State.positions }
  in
  let wnve =
    Mdsp_workload.Workloads.make_engine
      ~config:{ E.default_config with dt_fs = 1.0; temperature = 300. }
      wsys
  in
  Array.blit st.Mdsp_md.State.velocities 0
    (E.state wnve).Mdsp_md.State.velocities 0 192;
  E.refresh_forces wnve;
  let wdrift = nve_drift_per_ps wnve 1000 1.0 in
  T.row t
    [
      "NVE relative drift, rigid water-192, dt=1fs";
      Printf.sprintf "%.1e /ps" wdrift;
      "< 1e-3";
    ];
  let viol =
    Mdsp_md.Constraints.max_violation (E.constraints wnve)
      (E.state wnve).Mdsp_md.State.box (E.state wnve).Mdsp_md.State.positions
  in
  T.row t
    [ "max constraint violation (relative)"; Printf.sprintf "%.1e" viol; "< 1e-7" ];
  (* Thermostats. *)
  let mean_temp thermostat label =
    let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
    let cfg =
      { E.default_config with dt_fs = 2.0; temperature = 120.; thermostat }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
    E.run eng 4000;
    let acc = Stats.Online.create () in
    for _ = 1 to 2000 do
      E.step eng;
      Stats.Online.add acc (E.temperature eng)
    done;
    T.row t
      [
        Printf.sprintf "<T> under %s (target 120 K)" label;
        Printf.sprintf "%.1f K" (Stats.Online.mean acc);
        "120 +- 3";
      ]
  in
  mean_temp (E.Langevin { gamma_fs = 0.02 }) "Langevin";
  mean_temp (E.Nose_hoover { tau_fs = 50. }) "Nose-Hoover";
  mean_temp (E.Berendsen { tau_fs = 100. }) "Berendsen";
  (* Barostat relaxation. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~rho_star:1.05 ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
      barostat = E.Berendsen_baro { tau_fs = 500.; pressure_atm = 1. };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let p0 = E.pressure_atm eng in
  E.run eng 5000;
  let acc = Stats.Online.create () in
  for _ = 1 to 1000 do
    E.step eng;
    Stats.Online.add acc (E.pressure_atm eng)
  done;
  T.row t
    [
      Printf.sprintf "barostat pressure relaxation (from %.0f atm)" p0;
      Printf.sprintf "%.0f atm" (Stats.Online.mean acc);
      "toward 1 atm";
    ];
  (* Long-range agreement (GSE vs Ewald), NaCl Madelung. *)
  let box = Pbc.cubic 2.0 in
  let positions = ref [] and charges = ref [] in
  for x = 0 to 1 do
    for y = 0 to 1 do
      for z = 0 to 1 do
        positions :=
          Vec3.make (float_of_int x) (float_of_int y) (float_of_int z)
          :: !positions;
        charges := (if (x + y + z) mod 2 = 0 then 1.0 else -1.0) :: !charges
      done
    done
  done;
  let pos = Array.of_list !positions and q = Array.of_list !charges in
  let ew = Mdsp_longrange.Ewald.create ~beta:2.5 ~kmax:12 box in
  let m =
    -.Mdsp_longrange.Ewald.total_reference ew box q pos /. (Units.coulomb *. 4.)
  in
  T.row t
    [ "NaCl Madelung constant (Ewald)"; Printf.sprintf "%.6f" m; "1.747565" ];
  let beta = 0.35 in
  let box10 = Pbc.cubic 10. in
  let rng = Rng.create 5 in
  let pos10 =
    Array.init 20 (fun _ ->
        Vec3.make
          (Rng.uniform_in rng 0. 10.)
          (Rng.uniform_in rng 0. 10.)
          (Rng.uniform_in rng 0. 10.))
  in
  let q10 = Array.init 20 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  let ew10 = Mdsp_longrange.Ewald.create ~beta ~kmax:14 box10 in
  let acc1 = Mdsp_ff.Bonded.make_accum 20 in
  let e_ref = Mdsp_longrange.Ewald.reciprocal ew10 q10 pos10 acc1 in
  let gse = Mdsp_longrange.Gse.create ~beta ~grid:(32, 32, 32) box10 in
  let acc2 = Mdsp_ff.Bonded.make_accum 20 in
  let e_gse = Mdsp_longrange.Gse.reciprocal gse q10 pos10 acc2 in
  T.row t
    [
      "GSE grid solver vs Ewald (reciprocal energy)";
      Printf.sprintf "%.2e rel" (abs_float ((e_gse -. e_ref) /. e_ref));
      "< 1e-3";
    ];
  T.print t
