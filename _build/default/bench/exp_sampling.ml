(* Experiments E8-E11, E13, E14: the extended sampling methods running on
   real dynamics, each validated against an analytic or known answer. *)

open Mdsp_util
open Bench_common
module E = Mdsp_md.Engine

let dw_barrier = 3.0
let dw_half_width = 2.5

(* E8 (Fig. 5): metadynamics recovers the double-well free energy. *)
let e8 () =
  section "E8" "Metadynamics free-energy recovery (Fig. 5)";
  let eng = double_well_engine ~temp:300. () in
  let cv = Mdsp_core.Cv.position ~axis:`X ~i:0 in
  let meta =
    Mdsp_core.Metadynamics.create ~well_tempered:2700. ~cv ~sigma:0.25
      ~height:0.12 ~stride:50 ~temp:300. ()
  in
  Mdsp_core.Metadynamics.attach meta eng;
  E.run eng 150_000;
  let fes = Mdsp_core.Metadynamics.free_energy_estimate meta ~lo:(-3.5) ~hi:3.5 ~bins:29 in
  let fmin = Array.fold_left (fun a (_, f) -> Float.min a f) infinity fes in
  let t =
    T.create ~title:"Reconstructed free energy along x (kcal/mol)"
      ~columns:[ ("x", T.Right); ("F_metad", T.Right); ("F_exact", T.Right) ]
  in
  Array.iter
    (fun (s, f) ->
      if int_of_float (Float.round (s *. 4.)) mod 2 = 0 then
        T.row t
          [
            T.cell_f ~prec:3 s;
            T.cell_f ~prec:3 (f -. fmin);
            T.cell_f ~prec:3
              (Mdsp_workload.Workloads.double_well_energy ~barrier:dw_barrier
                 ~half_width:dw_half_width s);
          ])
    fes;
  T.print t;
  let f_at x =
    let _, f =
      Array.fold_left
        (fun (best, bf) (s, f) ->
          if abs_float (s -. x) < abs_float (best -. x) then (s, f)
          else (best, bf))
        (99., 0.) fes
    in
    f -. fmin
  in
  let barrier = f_at 0. -. Float.min (f_at (-.dw_half_width)) (f_at dw_half_width) in
  note "hills deposited: %d; barrier estimate %.2f kcal/mol (true %.1f)\n"
    (Mdsp_core.Metadynamics.n_hills meta)
    barrier dw_barrier

(* E9 (Fig. 6): tempering and replica exchange traverse temperature space. *)
let e9 () =
  section "E9" "Simulated tempering and replica exchange (Fig. 6)";
  (* Simulated tempering. *)
  let eng = lj_engine ~n:108 ~equil:1000 () in
  let temps = [| 120.; 132.; 145.; 160. |] in
  let st = Mdsp_core.Tempering.create ~temps ~stride:50 () in
  Mdsp_core.Tempering.attach st eng;
  E.run eng 40_000;
  let t =
    T.create ~title:"Simulated tempering: rung occupancy (LJ-108)"
      ~columns:[ ("T (K)", T.Right); ("visits", T.Right); ("weight", T.Right) ]
  in
  let visits = Mdsp_core.Tempering.visits st in
  let weights = Mdsp_core.Tempering.weights st in
  Array.iteri
    (fun i temp ->
      T.row t
        [ T.cell_f ~prec:4 temp; T.cell_i visits.(i); T.cell_f ~prec:3 weights.(i) ])
    temps;
  T.print t;
  note "tempering acceptance: %.2f\n\n" (Mdsp_core.Tempering.acceptance_rate st);
  (* REMD. *)
  let engines =
    Array.mapi
      (fun i temp ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = temp;
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(300 + i) sys)
      temps
  in
  Array.iter (fun e -> E.run e 1000) engines;
  let remd = Mdsp_core.Remd.create ~engines ~temps ~stride:50 ~seed:11 in
  Mdsp_core.Remd.run remd ~sweeps:150;
  let acc = Mdsp_core.Remd.acceptance remd in
  let t2 =
    T.create ~title:"Replica exchange: neighbor-pair acceptance"
      ~columns:[ ("pair", T.Left); ("acceptance", T.Right) ]
  in
  Array.iteri
    (fun i a ->
      T.row t2
        [
          Printf.sprintf "%.0fK <-> %.0fK" temps.(i) temps.(i + 1);
          Printf.sprintf "%.2f" a;
        ])
    acc;
  T.print t2;
  note
    "Healthy (0.2-0.6) acceptance across the ladder on both methods; the\n\
     machine implements the exchange as a scalar-energy message.\n"

(* E10 (Table IV): FEP reproduces analytic free-energy differences. *)
let e10 () =
  section "E10" "Alchemical FEP vs analytic results (Table IV)";
  (* (a) harmonic spring-constant change: dF = (3/2) kT ln(k1/k0). *)
  let temp = 300. in
  let kt = Units.kt temp in
  let rng = Rng.create 17 in
  let k0 = 1.0 and k1 = 2.0 in
  let sigma = sqrt (kt /. (2. *. k0)) in
  let du =
    Array.init 300_000 (fun _ ->
        let x = Rng.gaussian_ms rng ~mean:0. ~sigma in
        let y = Rng.gaussian_ms rng ~mean:0. ~sigma in
        let z = Rng.gaussian_ms rng ~mean:0. ~sigma in
        (k1 -. k0) *. ((x *. x) +. (y *. y) +. (z *. z)))
  in
  let df_est = Mdsp_analysis.Free_energy.exp_averaging ~temp du in
  let df_exact = 1.5 *. kt *. log (k1 /. k0) in
  let t =
    T.create ~title:"Free-energy differences (kcal/mol)"
      ~columns:
        [ ("transformation", T.Left); ("estimate", T.Right); ("exact/ref", T.Right) ]
  in
  T.row t
    [
      "harmonic k: 1.0 -> 2.0 (Zwanzig)";
      T.cell_f ~prec:4 df_est;
      T.cell_f ~prec:4 df_exact;
    ];
  (* (b) LJ particle decoupling in a fluid, BAR over a lambda schedule;
     cross-checked against Widom test-particle insertion on the same
     fluid (a method-independent route to the same mu_ex). *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let info =
    Mdsp_core.Fep.make_info sys.Mdsp_workload.Workloads.topo
      ~solute:(Array.init 108 (fun i -> i = 0))
      ~cutoff:8. ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~cutoff:8. sys in
  E.run eng 1500;
  (* Widom reference, sampled on the unperturbed fluid. *)
  let widom =
    Mdsp_core.Widom.create ~epsilon:0.238 ~sigma:3.405 ~cutoff:8.
      ~insertions_per_frame:100 ~seed:3
  in
  Mdsp_core.Widom.attach widom ~stride:20 eng;
  E.run eng 20_000;
  ignore (E.remove_post_step eng "widom");
  let mu_widom = Mdsp_core.Widom.mu_excess widom ~temp:120. in
  let res =
    Mdsp_core.Fep.run info ~engine:eng
      ~lambdas:[| 0.0; 0.15; 0.3; 0.45; 0.6; 0.75; 0.9; 1.0 |]
      ~temp:120. ~equil_steps:800 ~sample_steps:6000 ~sample_stride:10
  in
  T.row t
    [
      "LJ solute coupling 0 -> 1 (BAR, 8 windows)";
      T.cell_f ~prec:3 res.Mdsp_core.Fep.delta_f;
      Printf.sprintf "Widom mu_ex = %.3f (+- ~0.3 stat.)" mu_widom;
    ];
  T.print t;
  note "per-stage BAR: %s\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (Printf.sprintf "%.2f") res.Mdsp_core.Fep.per_stage)))

(* E11 (Fig. 7): string method with swarms converges to the bowed MFEP. *)
let e11 () =
  section "E11" "String method with swarms of trajectories (Fig. 7)";
  let sys = Mdsp_workload.Workloads.double_well_2d () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 150.;
      thermostat = E.Langevin { gamma_fs = 0.05 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let cvx = Mdsp_core.Cv.position ~axis:`X ~i:0 in
  let cvy = Mdsp_core.Cv.position ~axis:`Y ~i:0 in
  let sm =
    Mdsp_core.String_method.create ~cvs:[| cvx; cvy |] ~start:[| -2.5; 0. |]
      ~stop:[| 2.5; 0. |] ~n_images:11 ~engine:eng ~k:20. ~equil_steps:300
      ~n_swarms:15 ~swarm_steps:40 ~seed:5
  in
  let final_move = ref infinity in
  for _ = 1 to 30 do
    final_move := Mdsp_core.String_method.iterate sm
  done;
  let t =
    T.create ~title:"Converged string vs analytic minimum-energy path"
      ~columns:[ ("x", T.Right); ("y (string)", T.Right); ("y (MEP)", T.Right) ]
  in
  Array.iter
    (fun img ->
      T.row t
        [
          T.cell_f ~prec:3 img.(0);
          T.cell_f ~prec:3 img.(1);
          T.cell_f ~prec:3
            (Mdsp_workload.Workloads.double_well_2d_path ~half_width:2.5
               ~bow:1.5 img.(0));
        ])
    (Mdsp_core.String_method.images sm);
  T.print t;
  note "iterations: %d, final image movement: %.3f CV units\n"
    (Mdsp_core.String_method.iterations sm)
    !final_move

(* E13 (Fig. 8): umbrella sampling + WHAM potential of mean force. *)
let e13 () =
  section "E13" "Umbrella sampling + WHAM (Fig. 8)";
  let make_engine () = double_well_engine ~temp:300. () in
  let cv = Mdsp_core.Cv.position ~axis:`X ~i:0 in
  let centers = Array.init 13 (fun i -> -3.0 +. (0.5 *. float_of_int i)) in
  let plan =
    Mdsp_core.Umbrella.make_plan ~cv ~k:4.0 ~centers ~equil_steps:500
      ~sample_steps:5000 ~sample_stride:5
  in
  let results = Mdsp_core.Umbrella.run plan ~make_engine in
  let p = Mdsp_core.Umbrella.solve ~temp:300. ~lo:(-3.4) ~hi:3.4 ~bins:34 results in
  let t =
    T.create ~title:"PMF along x (kcal/mol)"
      ~columns:[ ("x", T.Right); ("F_wham", T.Right); ("F_exact", T.Right) ]
  in
  Array.iteri
    (fun b f ->
      if (not (Float.is_nan f)) && b mod 2 = 0 then
        T.row t
          [
            T.cell_f ~prec:3 p.Mdsp_analysis.Wham.centers.(b);
            T.cell_f ~prec:3 f;
            T.cell_f ~prec:3
              (Mdsp_workload.Workloads.double_well_energy ~barrier:dw_barrier
                 ~half_width:dw_half_width p.Mdsp_analysis.Wham.centers.(b));
          ])
    p.Mdsp_analysis.Wham.free_energy;
  T.print t;
  note "WHAM iterations: %d\n" p.Mdsp_analysis.Wham.iterations

(* E14 (Fig. 9): TAMD and boost potentials accelerate barrier crossing. *)
let e14 () =
  section "E14" "Barrier-crossing acceleration: TAMD and boost (Fig. 9)";
  let run ~variant seed =
    let eng = double_well_engine ~temp:200. ~seed () in
    let cv = Mdsp_core.Cv.position ~axis:`X ~i:0 in
    (match variant with
    | `Plain -> ()
    | `Tamd ->
        let t =
          Mdsp_core.Tamd.create ~cv ~k:10. ~s0:(-.dw_half_width) ~gamma:0.1
            ~s_temp:1500. ~seed ()
        in
        Mdsp_core.Tamd.attach t eng
    | `Amd ->
        let e0 = E.potential_energy eng in
        let amd = Mdsp_core.Amd.create ~threshold:(e0 +. 3.5) ~alpha:0.7 in
        Mdsp_core.Amd.attach amd eng);
    let trace = ref [] in
    E.add_post_step eng ~name:"trace" (fun eng ->
        let st = E.state eng in
        trace :=
          cv.Mdsp_core.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions
          :: !trace);
    E.run eng 20_000;
    crossings (List.rev !trace)
  in
  let total variant =
    List.fold_left (fun acc seed -> acc + run ~variant seed) 0 [ 1; 2; 3 ]
  in
  let t =
    T.create
      ~title:"Barrier crossings in 3 x 40 ps at 200 K (barrier = 7.5 kT)"
      ~columns:[ ("method", T.Left); ("crossings", T.Right) ]
  in
  T.row t [ "plain MD"; T.cell_i (total `Plain) ];
  T.row t [ "TAMD (hot CV at 1500 K)"; T.cell_i (total `Tamd) ];
  T.row t [ "accelerated MD (boost)"; T.cell_i (total `Amd) ];
  T.print t;
  note
    "Both acceleration methods multiply the crossing rate of plain MD, as\n\
     the paper's motivating applications require.\n"
