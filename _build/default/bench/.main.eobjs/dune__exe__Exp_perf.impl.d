bench/exp_perf.ml: Array Bench_common Config Fun List Mdsp_baseline Mdsp_core Mdsp_ff Mdsp_longrange Mdsp_machine Mdsp_util Mdsp_workload Perf Printf T
