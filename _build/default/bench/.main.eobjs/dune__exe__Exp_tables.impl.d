bench/exp_tables.ml: Array Bench_common Float Fun List Mdsp_baseline Mdsp_core Mdsp_ff Mdsp_machine Mdsp_space Mdsp_util Mdsp_workload Pbc Rng T
