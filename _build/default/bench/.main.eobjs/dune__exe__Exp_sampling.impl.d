bench/exp_sampling.ml: Array Bench_common Float List Mdsp_analysis Mdsp_core Mdsp_ff Mdsp_md Mdsp_util Mdsp_workload Printf Rng String T Units
