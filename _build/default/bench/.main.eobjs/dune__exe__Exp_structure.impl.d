bench/exp_structure.ml: Array Bench_common List Mdsp_analysis Mdsp_ff Mdsp_md Mdsp_space Mdsp_util Mdsp_workload Pbc Printf Rng T Units
