bench/exp_ablations.ml: Array Bench_common Fixed Float List Mdsp_core Mdsp_ff Mdsp_machine Mdsp_md Mdsp_space Mdsp_util Mdsp_workload Poly Printf Rng T Vec3
