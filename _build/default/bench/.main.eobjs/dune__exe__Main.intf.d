bench/main.mli:
