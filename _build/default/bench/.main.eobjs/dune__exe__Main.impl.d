bench/main.ml: Array Exp_ablations Exp_ensemble Exp_perf Exp_physics Exp_sampling Exp_structure Exp_tables Exp_timing List Printf Sys
