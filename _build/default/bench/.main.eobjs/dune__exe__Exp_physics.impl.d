bench/exp_physics.ml: Array Bench_common Float Mdsp_ff Mdsp_longrange Mdsp_md Mdsp_util Mdsp_workload Pbc Printf Rng Stats T Units Vec3
