bench/bench_common.ml: List Mdsp_md Mdsp_util Mdsp_workload Printf Table_text
