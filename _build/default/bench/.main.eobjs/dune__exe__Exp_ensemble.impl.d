bench/exp_ensemble.ml: Array Bench_common Config Float List Mdsp_analysis Mdsp_core Mdsp_ff Mdsp_machine Mdsp_md Mdsp_util Mdsp_workload Perf Printf T
