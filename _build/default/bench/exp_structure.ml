(* Experiments E15-E16: equilibrium structure and transport of the LJ fluid
   — classic observables that validate the substrate against textbook
   physics and exercise the analysis layer. *)

open Mdsp_util
open Bench_common
module E = Mdsp_md.Engine

(* E15: radial distribution function of the LJ fluid near the triple point.
   Known shape: first peak slightly beyond 2^(1/6) sigma with g ~ 2.5-3,
   oscillations decaying to 1. *)
let e15 () =
  section "E15" "Radial distribution function of the LJ fluid";
  let sigma = 3.405 in
  let eng = lj_engine ~n:500 ~temp:120. ~equil:3000 () in
  let box = (E.state eng).Mdsp_md.State.box in
  let sd =
    Mdsp_analysis.Structure.create ~r_max:(0.45 *. Pbc.min_edge box) ~bins:60
  in
  for _ = 1 to 150 do
    E.run eng 20;
    let st = E.state eng in
    Mdsp_analysis.Structure.sample sd st.Mdsp_md.State.box
      st.Mdsp_md.State.positions ()
  done;
  let t =
    T.create ~title:"g(r), LJ-500 at rho* = 0.8, T* = 1.0"
      ~columns:[ ("r/sigma", T.Right); ("g(r)", T.Right) ]
  in
  Array.iteri
    (fun i (r, g) ->
      if i mod 3 = 1 then
        T.row t [ T.cell_f ~prec:3 (r /. sigma); T.cell_f ~prec:3 g ])
    (Mdsp_analysis.Structure.g sd);
  T.print t;
  let r_peak, g_peak = Mdsp_analysis.Structure.first_peak ~r_min:2.5 sd in
  let cn = Mdsp_analysis.Structure.coordination_number sd ~r_cut:(1.5 *. sigma) in
  note
    "first peak at r = %.2f A (%.2f sigma; LJ liquids peak near 1.05-1.15\n\
     sigma) with g = %.2f; first-shell coordination %.1f (expect ~12 for a\n\
     dense LJ liquid).\n"
    r_peak (r_peak /. sigma) g_peak cn

(* E16: self-diffusion of the LJ fluid from the MSD slope. Literature for
   rho* = 0.8, T* ~ 1.0: D* = D sqrt(m/eps)/sigma ~ 0.03-0.06. *)
let e16 () =
  section "E16" "Self-diffusion coefficient of the LJ fluid (MSD)";
  (* NVE sampling after equilibration: thermostats perturb dynamics. *)
  let eng = lj_engine ~n:256 ~temp:120. ~equil:4000 () in
  let st = E.state eng in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:256 () in
  let sys =
    { sys with Mdsp_workload.Workloads.positions = Array.copy st.Mdsp_md.State.positions }
  in
  let nve =
    Mdsp_workload.Workloads.make_engine
      ~config:{ E.default_config with dt_fs = 2.0; temperature = 120. }
      sys
  in
  Array.blit st.Mdsp_md.State.velocities 0
    (E.state nve).Mdsp_md.State.velocities 0 256;
  E.refresh_forces nve;
  let tr = Mdsp_analysis.Transport.create ~n:256 in
  for _ = 1 to 200 do
    E.run nve 25;
    let s = E.state nve in
    Mdsp_analysis.Transport.record tr ~time:s.Mdsp_md.State.time
      s.Mdsp_md.State.positions s.Mdsp_md.State.velocities
  done;
  let msd = Mdsp_analysis.Transport.msd tr in
  let t =
    T.create ~title:"Mean-squared displacement (every 10th lag)"
      ~columns:[ ("t (ps)", T.Right); ("MSD (A^2)", T.Right) ]
  in
  Array.iteri
    (fun i (dt, m) ->
      if i mod 10 = 0 then
        T.row t
          [
            T.cell_f ~prec:3 (Units.to_ns dt *. 1000.);
            T.cell_f ~prec:4 m;
          ])
    msd;
  T.print t;
  let d = Mdsp_analysis.Transport.diffusion_coefficient tr in
  let d_cgs = Mdsp_analysis.Transport.d_cm2_s d in
  (* Reduced units: D* = D sqrt(m/eps) / sigma. *)
  let sigma = 3.405 and eps = 0.238 and m = 39.948 in
  let d_star = d *. sqrt (m /. eps) /. sigma in
  note
    "D = %.3e cm^2/s (D* = %.3f; literature ~0.03-0.06 for the LJ liquid\n\
     at rho* = 0.8, T* = 1) — right regime for liquid argon (~2e-5 cm^2/s).\n"
    d_cgs d_star;
  (* VACF zero crossing: caging in a dense liquid. *)
  let vacf = Mdsp_analysis.Transport.vacf tr in
  let crossing =
    Array.fold_left
      (fun acc (dt, c) ->
        match acc with Some _ -> acc | None -> if c < 0. then Some dt else None)
      None vacf
  in
  (match crossing with
  | Some dt ->
      note "VACF first crosses zero at %.2f ps (backscattering / caging).\n"
        (Units.to_ns dt *. 1000.)
  | None -> note "VACF stayed positive over the sampled lags.\n")

(* E19: supercooled-liquid slowdown in the Kob-Andersen mixture — the
   standard glass-former benchmark (and the phenomenology the same group
   studied in supercooled ortho-terphenyl). Cooling at constant density
   should slow self-diffusion dramatically faster than the ~sqrt(T)
   ballistic prediction. *)
let e19 () =
  section "E19" "Supercooled slowdown: Kob-Andersen binary mixture";
  let run_at temp =
    let sys = Mdsp_workload.Workloads.kob_andersen ~n:250 () in
    let ev = Mdsp_workload.Workloads.kob_andersen_evaluator sys ~cutoff:8. in
    let nlist =
      Mdsp_space.Neighbor_list.create ~cutoff:8. ~skin:1.
        sys.Mdsp_workload.Workloads.box sys.Mdsp_workload.Workloads.positions
    in
    let fc =
      Mdsp_md.Force_calc.create sys.Mdsp_workload.Workloads.topo ~evaluator:ev
        ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
    in
    let st =
      Mdsp_md.State.create ~positions:sys.Mdsp_workload.Workloads.positions
        ~masses:(Mdsp_ff.Topology.masses sys.Mdsp_workload.Workloads.topo)
        ~box:sys.Mdsp_workload.Workloads.box
    in
    Mdsp_md.State.thermalize st (Rng.create 8) ~temp;
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = temp;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = E.create ~seed:8 sys.Mdsp_workload.Workloads.topo fc st cfg in
    E.run eng 6000;
    (* Measure D over 120 ps with the (weak) thermostat on. *)
    let n = Array.length sys.Mdsp_workload.Workloads.positions in
    let tr = Mdsp_analysis.Transport.create ~n in
    for _ = 1 to 120 do
      E.run eng 50;
      let s = E.state eng in
      Mdsp_analysis.Transport.record tr ~time:s.Mdsp_md.State.time
        s.Mdsp_md.State.positions s.Mdsp_md.State.velocities
    done;
    Mdsp_analysis.Transport.d_cm2_s
      (Mdsp_analysis.Transport.diffusion_coefficient tr)
  in
  let t =
    T.create ~title:"Self-diffusion vs temperature at constant density"
      ~columns:
        [ ("T (K)", T.Right); ("D (cm^2/s)", T.Right); ("slowdown vs 360K", T.Right) ]
  in
  let d_hot = run_at 360. in
  List.iter
    (fun temp ->
      let d = if temp = 360. then d_hot else run_at temp in
      T.row t
        [
          T.cell_f ~prec:4 temp;
          T.cell_f ~prec:3 d;
          Printf.sprintf "%.1fx" (d_hot /. d);
        ])
    [ 360.; 240.; 180.; 120. ];
  T.print t;
  note
    "Cooling by 3x slows diffusion far more than the sqrt(T) ballistic\n\
     factor (1.7x) — the super-Arrhenius onset that makes glass formers\n\
     the motivating workload for microsecond-class machines.\n"
