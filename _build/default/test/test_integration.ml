(* End-to-end integration tests: the whole engine running on machine-model
   tables, machine-vs-reference agreement on realistic systems, and
   cross-module workflows. *)

open Mdsp_util
open Testsupport
module E = Mdsp_md.Engine

(* Build an engine whose pair evaluator is the machine's table-backed
   HTIS model instead of the analytic reference. *)
let machine_engine ?(n_table = 2048) ?(config = E.default_config) sys =
  let open Mdsp_workload.Workloads in
  let cutoff = Float.min 9. (0.45 *. Pbc.min_edge sys.box) in
  let has_charges =
    Array.exists
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.charge <> 0.)
      sys.topo.Mdsp_ff.Topology.atoms
  in
  let elec =
    if has_charges then
      Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 }
    else Mdsp_ff.Pair_interactions.No_coulomb
  in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff ~elec ~n:n_table ()
  in
  let types =
    Array.map
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
      sys.topo.Mdsp_ff.Topology.atoms
  in
  let charges = Mdsp_ff.Topology.charges sys.topo in
  let evaluator = Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff in
  let nlist =
    Mdsp_space.Neighbor_list.create
      ~exclusions:sys.topo.Mdsp_ff.Topology.exclusions ~cutoff ~skin:1.0
      sys.box sys.positions
  in
  let fc =
    Mdsp_md.Force_calc.create sys.topo ~evaluator
      ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
  in
  let st =
    Mdsp_md.State.create ~positions:sys.positions
      ~masses:(Mdsp_ff.Topology.masses sys.topo)
      ~box:sys.box
  in
  Mdsp_md.State.thermalize st (Rng.create 23)
    ~temp:config.E.temperature;
  E.create ~seed:23 sys.topo fc st config

let test_machine_tables_forces_match_reference_water () =
  (* Water box: LJ + reaction-field electrostatics through tables. *)
  let sys = Mdsp_workload.Workloads.water_box ~n_side:4 () in
  let open Mdsp_workload.Workloads in
  let cutoff = Float.min 9. (0.45 *. Pbc.min_edge sys.box) in
  let elec = Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 } in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff ~elec ~n:4096 ()
  in
  let types =
    Array.map
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
      sys.topo.Mdsp_ff.Topology.atoms
  in
  let charges = Mdsp_ff.Topology.charges sys.topo in
  let mach = Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff in
  let refe =
    Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift ~elec
  in
  let r1 = Mdsp_baseline.Reference.compute sys.topo sys.box sys.positions ~evaluator:refe in
  let r2 = Mdsp_baseline.Reference.compute sys.topo sys.box sys.positions ~evaluator:mach in
  let err =
    Mdsp_baseline.Reference.max_force_error r1.Mdsp_baseline.Reference.forces
      r2.Mdsp_baseline.Reference.forces
  in
  check_true (Printf.sprintf "water force error %.2e < 1e-4" err) (err < 1e-4);
  check_close ~rel:1e-4 "pair energies"
    r1.Mdsp_baseline.Reference.pair_energy r2.Mdsp_baseline.Reference.pair_energy

let test_engine_runs_on_machine_evaluator () =
  (* NVE on machine tables: energy stays conserved at the table accuracy. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = machine_engine ~config:cfg sys in
  E.run eng 1000;
  (* switch to effectively-NVE by removing the thermostat via fresh config *)
  let sys2 =
    { sys with Mdsp_workload.Workloads.positions = Array.copy (E.state eng).Mdsp_md.State.positions }
  in
  let nve = machine_engine ~config:{ cfg with E.thermostat = E.No_thermostat } sys2 in
  Array.blit (E.state eng).Mdsp_md.State.velocities 0
    (E.state nve).Mdsp_md.State.velocities 0 108;
  E.refresh_forces nve;
  let e0 = E.total_energy nve in
  E.run nve 1000;
  let drift = abs_float (E.total_energy nve -. e0) /. abs_float e0 in
  check_true (Printf.sprintf "machine NVE drift %.2e < 1e-3" drift) (drift < 1e-3)

let test_machine_vs_reference_trajectories_agree_initially () =
  (* With identical initial conditions, machine-table and reference engines
     should track each other closely for a short horizon (Lyapunov growth
     separates them eventually). *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
  let cfg = { E.default_config with dt_fs = 2.0; temperature = 120. } in
  let eng_m = machine_engine ~n_table:4096 ~config:cfg sys in
  let eng_r = Mdsp_workload.Workloads.make_engine ~config:cfg ~cutoff:8. sys in
  (* Same cutoff for both: rebuild machine engine with cutoff 8. *)
  ignore eng_m;
  let sys8 = sys in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys8.Mdsp_workload.Workloads.topo
      ~cutoff:8. ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:4096 ()
  in
  let types = Array.make 64 0 in
  let charges = Array.make 64 0. in
  let evaluator = Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff:8. in
  Mdsp_md.Force_calc.set_evaluator (E.force_calc eng_r) evaluator;
  (* eng_r now runs on tables; compare against a fresh reference engine. *)
  let eng_ref = Mdsp_workload.Workloads.make_engine ~config:cfg ~cutoff:8. sys in
  E.refresh_forces eng_r;
  E.run eng_r 50;
  E.run eng_ref 50;
  let d =
    max_vec_diff (E.state eng_r).Mdsp_md.State.positions
      (E.state eng_ref).Mdsp_md.State.positions
  in
  check_true (Printf.sprintf "trajectories agree to %.2e A after 50 steps" d)
    (d < 1e-3)

let test_full_stack_water_with_gse () =
  (* Water with grid-based long-range electrostatics end to end. *)
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let open Mdsp_workload.Workloads in
  let cutoff = 0.45 *. Pbc.min_edge sys.box in
  let beta = 3.0 /. cutoff in
  let evaluator =
    Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift
      ~elec:(Mdsp_ff.Pair_interactions.Ewald_real { beta })
  in
  let nlist =
    Mdsp_space.Neighbor_list.create
      ~exclusions:sys.topo.Mdsp_ff.Topology.exclusions ~cutoff ~skin:1.
      sys.box sys.positions
  in
  let gse = Mdsp_longrange.Gse.create ~beta ~grid:(32, 32, 32) sys.box in
  let fc =
    Mdsp_md.Force_calc.create sys.topo ~evaluator
      ~longrange:(Mdsp_md.Force_calc.Lr_gse gse) ~nlist
  in
  let st =
    Mdsp_md.State.create ~positions:sys.positions
      ~masses:(Mdsp_ff.Topology.masses sys.topo)
      ~box:sys.box
  in
  Mdsp_md.State.thermalize st (Rng.create 31) ~temp:300.;
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = E.create ~seed:31 sys.topo fc st cfg in
  E.run eng 200;
  check_true "GSE run finite" (Float.is_finite (E.total_energy eng));
  let energies = E.energies eng in
  check_true "reciprocal energy nonzero"
    (abs_float energies.Mdsp_md.Force_calc.recip > 1e-6);
  check_true "correction negative (self energy dominates)"
    (energies.Mdsp_md.Force_calc.correction < 0.);
  let viol =
    Mdsp_md.Constraints.max_violation (E.constraints eng)
      (E.state eng).Mdsp_md.State.box (E.state eng).Mdsp_md.State.positions
  in
  check_true "waters stay rigid" (viol < 1e-6)

let test_bead_chain_full_workflow () =
  (* Chain + solvent + restraint kernel + metadynamics on an end-to-end
     distance CV, all simultaneously. *)
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:10 ~n_total:80 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 150.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  (* Flat-bottom container on the chain. *)
  let fb =
    Mdsp_core.Restraints.flat_bottom ~name:"container"
      ~particles:(Array.init 10 Fun.id) ~k:1. ~radius:15.
  in
  Mdsp_core.Restraints.attach_kernel eng fb;
  (* Metadynamics on the end-to-end distance. *)
  let cv = Mdsp_core.Cv.distance ~i:0 ~j:9 in
  let meta =
    Mdsp_core.Metadynamics.create ~cv ~sigma:0.5 ~height:0.1 ~stride:50
      ~temp:150. ()
  in
  Mdsp_core.Metadynamics.attach meta eng;
  E.refresh_forces eng;
  E.minimize eng ~steps:200;
  Mdsp_md.State.thermalize (E.state eng) (Rng.create 3) ~temp:150.;
  E.refresh_forces eng;
  E.run eng 2000;
  check_true "workflow stays finite" (Float.is_finite (E.total_energy eng));
  check_true "hills deposited" (Mdsp_core.Metadynamics.n_hills meta = 40);
  check_true "biases registered"
    (List.length (Mdsp_md.Force_calc.biases (E.force_calc eng)) >= 2)

let test_determinism_same_seed_same_trajectory () =
  let run () =
    let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = 120.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:99 sys in
    E.run eng 500;
    Array.copy (E.state eng).Mdsp_md.State.positions
  in
  let a = run () and b = run () in
  Array.iteri
    (fun i v ->
      if v <> b.(i) then Alcotest.failf "trajectories diverge at atom %d" i)
    a

let test_tip4p_on_machine_tables () =
  (* The full stack at once: virtual sites + compiled tables + reaction
     field + constraints, running stably. *)
  let sys = Mdsp_workload.Workloads.water_box_tip4p ~n_side:3 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = machine_engine ~n_table:2048 ~config:cfg sys in
  E.run eng 500;
  check_true "finite" (Float.is_finite (E.total_energy eng));
  let st = E.state eng in
  (* M sites still exactly placed. *)
  for m = 0 to 26 do
    let d = Pbc.dist st.Mdsp_md.State.box st.Mdsp_md.State.positions.(4 * m)
        st.Mdsp_md.State.positions.((4 * m) + 3)
    in
    check_close ~rel:1e-6 "O-M held on tables" Mdsp_ff.Water.Tip4p.om_dist d
  done

let test_kob_andersen_mixture () =
  let sys = Mdsp_workload.Workloads.kob_andersen ~n:250 () in
  (* Composition: exactly 20% B particles. *)
  let n_b =
    Array.fold_left
      (fun acc (a : Mdsp_ff.Topology.atom) ->
        if a.Mdsp_ff.Topology.name = "B" then acc + 1 else acc)
      0 sys.Mdsp_workload.Workloads.topo.Mdsp_ff.Topology.atoms
  in
  Alcotest.(check int) "80:20 composition" 50 n_b;
  (* Non-additivity: the AB interaction is NOT the LB mixture of AA and
     BB (sigma_AB = 0.8 < (1.0 + 0.88)/2 = 0.94). *)
  let ev =
    Mdsp_workload.Workloads.kob_andersen_evaluator sys ~cutoff:8.
  in
  let a_idx = 0 and b_idx = 4 in
  (* Find the zero crossing of the AB pair energy: should be near
     0.8 * 3.405 = 2.72 A, far below the LB 3.2 A. *)
  let e_ab r = fst (ev.Mdsp_ff.Pair_interactions.eval a_idx b_idx (r *. r)) in
  check_true "AB zero crossing below LB prediction"
    (e_ab 2.8 < 0. && e_ab 2.6 > 0.);
  (* And it runs: build an engine on the custom evaluator. *)
  let nlist =
    Mdsp_space.Neighbor_list.create ~cutoff:8. ~skin:1.
      sys.Mdsp_workload.Workloads.box sys.Mdsp_workload.Workloads.positions
  in
  let fc =
    Mdsp_md.Force_calc.create sys.Mdsp_workload.Workloads.topo ~evaluator:ev
      ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
  in
  let st =
    Mdsp_md.State.create ~positions:sys.Mdsp_workload.Workloads.positions
      ~masses:(Mdsp_ff.Topology.masses sys.Mdsp_workload.Workloads.topo)
      ~box:sys.Mdsp_workload.Workloads.box
  in
  Mdsp_md.State.thermalize st (Rng.create 8) ~temp:180.;
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 180.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = E.create ~seed:8 sys.Mdsp_workload.Workloads.topo fc st cfg in
  E.run eng 500;
  check_true "KA mixture runs" (Float.is_finite (E.total_energy eng))

let test_presets_all_build () =
  List.iter
    (fun p ->
      let sys = p.Mdsp_workload.Workloads.build () in
      let n = Mdsp_ff.Topology.n_atoms sys.Mdsp_workload.Workloads.topo in
      check_close ~rel:0.02
        (Printf.sprintf "%s atom count" p.Mdsp_workload.Workloads.name)
        (float_of_int p.Mdsp_workload.Workloads.atoms)
        (float_of_int n))
    Mdsp_workload.Workloads.presets

let () =
  Alcotest.run "mdsp_integration"
    [
      ( "machine_tables",
        [
          Alcotest.test_case "water forces match reference" `Slow
            test_machine_tables_forces_match_reference_water;
          Alcotest.test_case "engine runs on machine evaluator" `Slow
            test_engine_runs_on_machine_evaluator;
          Alcotest.test_case "short-horizon trajectory agreement" `Slow
            test_machine_vs_reference_trajectories_agree_initially;
        ] );
      ( "full_stack",
        [
          Alcotest.test_case "water + GSE long range" `Slow
            test_full_stack_water_with_gse;
          Alcotest.test_case "chain + restraints + metadynamics" `Slow
            test_bead_chain_full_workflow;
        ] );
      ( "reproducibility",
        [
          Alcotest.test_case "same seed, same trajectory" `Slow
            test_determinism_same_seed_same_trajectory;
          Alcotest.test_case "presets build" `Slow test_presets_all_build;
          Alcotest.test_case "Kob-Andersen mixture" `Slow
            test_kob_andersen_mixture;
          Alcotest.test_case "TIP4P on machine tables" `Slow
            test_tip4p_on_machine_tables;
        ] );
    ]
