(* Tests for Mdsp_longrange: FFT, classic Ewald (Madelung constants), and
   the Gaussian-split-Ewald grid solver. *)

open Mdsp_util
open Mdsp_longrange
open Testsupport

(* --- FFT --- *)

let test_fft_pow2_helpers () =
  check_true "8 is pow2" (Fft.is_pow2 8);
  check_true "12 is not" (not (Fft.is_pow2 12));
  Alcotest.(check int) "next pow2" 16 (Fft.next_pow2 9);
  Alcotest.(check int) "next pow2 exact" 8 (Fft.next_pow2 8)

let test_fft_delta_function () =
  (* FFT of a delta at 0 is all ones. *)
  let n = 16 in
  let re = Array.make n 0. and im = Array.make n 0. in
  re.(0) <- 1.;
  Fft.fft_1d ~sign:(-1) re im;
  Array.iter (fun x -> check_float ~eps:1e-12 "re = 1" 1. x) re;
  Array.iter (fun x -> check_float ~eps:1e-12 "im = 0" 0. x) im

let test_fft_roundtrip () =
  let n = 64 in
  let rng = Rng.create 61 in
  let re0 = Array.init n (fun _ -> Rng.gaussian rng) in
  let im0 = Array.init n (fun _ -> Rng.gaussian rng) in
  let re = Array.copy re0 and im = Array.copy im0 in
  Fft.fft_1d ~sign:(-1) re im;
  Fft.fft_1d ~sign:1 re im;
  for i = 0 to n - 1 do
    check_float ~eps:1e-9 "re roundtrip" re0.(i) (re.(i) /. float_of_int n);
    check_float ~eps:1e-9 "im roundtrip" im0.(i) (im.(i) /. float_of_int n)
  done

let test_fft_parseval () =
  let n = 128 in
  let rng = Rng.create 62 in
  let re = Array.init n (fun _ -> Rng.gaussian rng) in
  let im = Array.make n 0. in
  let time_energy =
    Array.fold_left (fun a x -> a +. (x *. x)) 0. re
  in
  Fft.fft_1d ~sign:(-1) re im;
  let freq_energy = ref 0. in
  for i = 0 to n - 1 do
    freq_energy := !freq_energy +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
  done;
  check_close ~rel:1e-9 "Parseval" time_energy (!freq_energy /. float_of_int n)

let test_fft_single_mode () =
  (* cos(2 pi k0 x / n) has peaks at +-k0 only. *)
  let n = 32 and k0 = 5 in
  let re =
    Array.init n (fun i ->
        cos (2. *. Float.pi *. float_of_int (k0 * i) /. float_of_int n))
  in
  let im = Array.make n 0. in
  Fft.fft_1d ~sign:(-1) re im;
  for k = 0 to n - 1 do
    let expected = if k = k0 || k = n - k0 then float_of_int n /. 2. else 0. in
    check_float ~eps:1e-9 (Printf.sprintf "mode %d" k) expected re.(k)
  done

let test_fft_3d_roundtrip () =
  let nx, ny, nz = (8, 4, 16) in
  let total = nx * ny * nz in
  let rng = Rng.create 63 in
  let re0 = Array.init total (fun _ -> Rng.gaussian rng) in
  let re = Array.copy re0 and im = Array.make total 0. in
  Fft.fft_3d ~sign:(-1) ~nx ~ny ~nz re im;
  Fft.fft_3d ~sign:1 ~nx ~ny ~nz re im;
  let scale = 1. /. float_of_int total in
  for i = 0 to total - 1 do
    check_float ~eps:1e-9 "3d roundtrip" re0.(i) (re.(i) *. scale)
  done

let test_fft_rejects_non_pow2 () =
  Alcotest.check_raises "length 12"
    (Invalid_argument "Fft.fft_1d: length must be a power of 2") (fun () ->
      Fft.fft_1d ~sign:(-1) (Array.make 12 0.) (Array.make 12 0.))

(* --- Ewald --- *)

(* Rock-salt (NaCl) structure: Madelung constant 1.747565. *)
let nacl_system () =
  let a = 2.0 in
  let box = Pbc.cubic a in
  let positions = ref [] and charges = ref [] in
  for x = 0 to 1 do
    for y = 0 to 1 do
      for z = 0 to 1 do
        positions :=
          Vec3.make (float_of_int x) (float_of_int y) (float_of_int z)
          :: !positions;
        charges := (if (x + y + z) mod 2 = 0 then 1.0 else -1.0) :: !charges
      done
    done
  done;
  (box, Array.of_list !positions, Array.of_list !charges)

let test_ewald_madelung_nacl () =
  let box, pos, q = nacl_system () in
  let ew = Ewald.create ~beta:2.5 ~kmax:12 box in
  let e = Ewald.total_reference ew box q pos in
  (* E_total = -N_pairs * M * C / r0 with 4 formula units and r0 = 1. *)
  let madelung = -.e /. (Units.coulomb *. 4.0) in
  check_close ~rel:2e-3 "NaCl Madelung constant" 1.747565 madelung

let test_ewald_beta_independence () =
  (* The total must not depend on the splitting parameter. *)
  let box, pos, q = nacl_system () in
  let e1 = Ewald.total_reference (Ewald.create ~beta:2.0 ~kmax:14 box) box q pos in
  let e2 = Ewald.total_reference (Ewald.create ~beta:3.0 ~kmax:18 box) box q pos in
  check_close ~rel:2e-3 "beta independence" e1 e2

let test_ewald_cscl_madelung () =
  (* CsCl structure: body-centered, Madelung constant 1.762675 (in units of
     the nearest-neighbor distance sqrt(3)/2 a). *)
  let box = Pbc.cubic 2.0 in
  (* Two interpenetrating cubic lattices: + at corners, - at centers, for a
     2x2x2 supercell of unit cells of edge 1. *)
  let positions = ref [] and charges = ref [] in
  for x = 0 to 1 do
    for y = 0 to 1 do
      for z = 0 to 1 do
        positions :=
          Vec3.make (float_of_int x) (float_of_int y) (float_of_int z)
          :: !positions;
        charges := 1.0 :: !charges;
        positions :=
          Vec3.make
            (float_of_int x +. 0.5)
            (float_of_int y +. 0.5)
            (float_of_int z +. 0.5)
          :: !positions;
        charges := (-1.0) :: !charges
      done
    done
  done;
  let pos = Array.of_list !positions and q = Array.of_list !charges in
  let ew = Ewald.create ~beta:2.5 ~kmax:12 box in
  let e = Ewald.total_reference ew box q pos in
  let r_nn = sqrt 3. /. 2. in
  (* 8 formula units. *)
  let madelung = -.e *. r_nn /. (Units.coulomb *. 8.0) in
  check_close ~rel:2e-3 "CsCl Madelung constant" 1.762675 madelung

let test_ewald_reciprocal_forces_numeric () =
  let box = Pbc.cubic 10. in
  let rng = Rng.create 64 in
  let n = 8 in
  let pos =
    Array.init n (fun _ ->
        Vec3.make
          (Rng.uniform_in rng 0. 10.)
          (Rng.uniform_in rng 0. 10.)
          (Rng.uniform_in rng 0. 10.))
  in
  let q = Array.init n (fun i -> if i mod 2 = 0 then 1. else -1.) in
  let ew = Ewald.create ~beta:0.4 ~kmax:8 box in
  let acc = Mdsp_ff.Bonded.make_accum n in
  ignore (Ewald.reciprocal ew q pos acc);
  let numeric =
    numeric_forces ~h:1e-5
      (fun p ->
        let a = Mdsp_ff.Bonded.make_accum n in
        Ewald.reciprocal ew q p a)
      pos
  in
  check_true "reciprocal forces match numeric"
    (max_vec_diff acc.Mdsp_ff.Bonded.forces numeric < 1e-4)

let test_ewald_self_energy () =
  let box = Pbc.cubic 10. in
  let ew = Ewald.create ~beta:0.5 ~kmax:4 box in
  let q = [| 1.; -1.; 2. |] in
  check_close ~rel:1e-9 "self energy"
    (-0.5 /. sqrt Float.pi *. 6. *. Units.coulomb)
    (Ewald.self_energy ew q)

let test_ewald_excluded_correction_forces () =
  let box = Pbc.cubic 12. in
  let pos = [| Vec3.make 5. 5. 5.; Vec3.make 6.1 5. 5.; Vec3.make 5. 7. 5. |] in
  let q = [| 0.4; -0.4; 0.2 |] in
  let ex = Mdsp_space.Exclusions.of_pairs ~n:3 [ (0, 1) ] in
  let ew = Ewald.create ~beta:0.4 ~kmax:4 box in
  let acc = Mdsp_ff.Bonded.make_accum 3 in
  ignore (Ewald.excluded_correction ew box q pos ex acc);
  let numeric =
    numeric_forces ~h:1e-6
      (fun p ->
        let a = Mdsp_ff.Bonded.make_accum 3 in
        Ewald.excluded_correction ew box q p ex a)
      pos
  in
  check_true "excluded-correction forces match numeric"
    (max_vec_diff acc.Mdsp_ff.Bonded.forces numeric < 1e-5);
  (* Atom 2 is not in any excluded pair: zero force. *)
  check_true "uninvolved atom untouched"
    (Vec3.norm acc.Mdsp_ff.Bonded.forces.(2) < 1e-12)

(* --- GSE --- *)

let random_neutral_system seed n box_l =
  let rng = Rng.create seed in
  let box = Pbc.cubic box_l in
  let pos =
    Array.init n (fun _ ->
        Vec3.make
          (Rng.uniform_in rng 0. box_l)
          (Rng.uniform_in rng 0. box_l)
          (Rng.uniform_in rng 0. box_l))
  in
  let q = Array.init n (fun i -> if i mod 2 = 0 then 1. else -1.) in
  (box, pos, q)

let test_gse_matches_ewald_energy () =
  let box, pos, q = random_neutral_system 65 20 10. in
  let beta = 0.35 in
  let ew = Ewald.create ~beta ~kmax:14 box in
  let acc1 = Mdsp_ff.Bonded.make_accum 20 in
  let e_ref = Ewald.reciprocal ew q pos acc1 in
  let gse = Gse.create ~beta ~grid:(32, 32, 32) box in
  let acc2 = Mdsp_ff.Bonded.make_accum 20 in
  let e_gse = Gse.reciprocal gse q pos acc2 in
  check_close ~rel:2e-3 "reciprocal energy" e_ref e_gse

let test_gse_matches_ewald_forces () =
  let box, pos, q = random_neutral_system 66 20 10. in
  let beta = 0.35 in
  let ew = Ewald.create ~beta ~kmax:14 box in
  let acc1 = Mdsp_ff.Bonded.make_accum 20 in
  ignore (Ewald.reciprocal ew q pos acc1);
  let gse = Gse.create ~beta ~grid:(32, 32, 32) box in
  let acc2 = Mdsp_ff.Bonded.make_accum 20 in
  ignore (Gse.reciprocal gse q pos acc2);
  (* Typical force magnitude sets the error scale. *)
  let rms = ref 0. in
  Array.iter (fun f -> rms := !rms +. Vec3.norm2 f) acc1.Mdsp_ff.Bonded.forces;
  let rms = sqrt (!rms /. 20.) in
  let err =
    max_vec_diff acc1.Mdsp_ff.Bonded.forces acc2.Mdsp_ff.Bonded.forces /. rms
  in
  check_true (Printf.sprintf "relative force error %.2e < 2%%" err) (err < 0.02)

let test_gse_grid_refinement_improves () =
  let box, pos, q = random_neutral_system 67 16 10. in
  let beta = 0.35 in
  let ew = Ewald.create ~beta ~kmax:14 box in
  let acc = Mdsp_ff.Bonded.make_accum 16 in
  let e_ref = Ewald.reciprocal ew q pos acc in
  let err grid =
    let gse = Gse.create ~beta ~grid box in
    let a = Mdsp_ff.Bonded.make_accum 16 in
    abs_float (Gse.reciprocal gse q pos a -. e_ref)
  in
  let e16 = err (16, 16, 16) and e32 = err (32, 32, 32) in
  check_true
    (Printf.sprintf "finer grid better: %.2e -> %.2e" e16 e32)
    (e32 < e16)

let test_gse_virial_matches_ewald () =
  let box, pos, q = random_neutral_system 68 20 10. in
  let beta = 0.35 in
  let ew = Ewald.create ~beta ~kmax:14 box in
  let acc1 = Mdsp_ff.Bonded.make_accum 20 in
  ignore (Ewald.reciprocal ew q pos acc1);
  let gse = Gse.create ~beta ~grid:(32, 32, 32) box in
  let acc2 = Mdsp_ff.Bonded.make_accum 20 in
  ignore (Gse.reciprocal gse q pos acc2);
  check_close ~rel:5e-3 "reciprocal virial" acc1.Mdsp_ff.Bonded.virial
    acc2.Mdsp_ff.Bonded.virial

let test_gse_rejects_bad_config () =
  let box = Pbc.cubic 10. in
  Alcotest.check_raises "non-pow2 grid"
    (Invalid_argument "Gse.create: grid dims must be powers of two") (fun () ->
      ignore (Gse.create ~beta:0.3 ~grid:(12, 16, 16) box));
  Alcotest.check_raises "sigma too large"
    (Invalid_argument "Gse.create: sigma_s must be <= 1/(2 beta)") (fun () ->
      ignore (Gse.create ~beta:0.3 ~grid:(16, 16, 16) ~sigma_s:2.0 box))

let test_gse_chargeless_is_zero () =
  let box = Pbc.cubic 10. in
  let gse = Gse.create ~beta:0.35 ~grid:(16, 16, 16) box in
  let pos = [| Vec3.make 1. 1. 1.; Vec3.make 5. 5. 5. |] in
  let acc = Mdsp_ff.Bonded.make_accum 2 in
  let e = Gse.reciprocal gse [| 0.; 0. |] pos acc in
  check_float ~eps:0. "zero energy" 0. e;
  Array.iter
    (fun f -> check_true "zero forces" (Vec3.norm f = 0.))
    acc.Mdsp_ff.Bonded.forces

let () =
  Alcotest.run "mdsp_longrange"
    [
      ( "fft",
        [
          Alcotest.test_case "pow2 helpers" `Quick test_fft_pow2_helpers;
          Alcotest.test_case "delta function" `Quick test_fft_delta_function;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "Parseval" `Quick test_fft_parseval;
          Alcotest.test_case "single mode" `Quick test_fft_single_mode;
          Alcotest.test_case "3d roundtrip" `Quick test_fft_3d_roundtrip;
          Alcotest.test_case "rejects non-pow2" `Quick
            test_fft_rejects_non_pow2;
        ] );
      ( "ewald",
        [
          Alcotest.test_case "NaCl Madelung" `Quick test_ewald_madelung_nacl;
          Alcotest.test_case "beta independence" `Quick
            test_ewald_beta_independence;
          Alcotest.test_case "CsCl Madelung" `Quick test_ewald_cscl_madelung;
          Alcotest.test_case "reciprocal forces numeric" `Quick
            test_ewald_reciprocal_forces_numeric;
          Alcotest.test_case "self energy" `Quick test_ewald_self_energy;
          Alcotest.test_case "excluded correction forces" `Quick
            test_ewald_excluded_correction_forces;
        ] );
      ( "gse",
        [
          Alcotest.test_case "matches Ewald energy" `Quick
            test_gse_matches_ewald_energy;
          Alcotest.test_case "matches Ewald forces" `Quick
            test_gse_matches_ewald_forces;
          Alcotest.test_case "grid refinement improves" `Quick
            test_gse_grid_refinement_improves;
          Alcotest.test_case "virial matches Ewald" `Quick
            test_gse_virial_matches_ewald;
          Alcotest.test_case "rejects bad config" `Quick
            test_gse_rejects_bad_config;
          Alcotest.test_case "chargeless zero" `Quick
            test_gse_chargeless_is_zero;
        ] );
    ]
