(* Tests for Mdsp_analysis: WHAM and the free-energy estimators, on
   synthetic data with analytic answers. *)

open Mdsp_util
open Mdsp_analysis
open Testsupport

(* --- WHAM on a harmonic potential --- *)

(* True free energy F(x) = a x^2 at temperature T. Sampling window i has
   bias k (x - c_i)^2; the biased distribution is Gaussian with
   mean = k c_i / (a + k) and variance = kT / (2 (a + k)). *)
let harmonic_windows ~temp ~a ~k ~centers ~samples_per ~seed =
  let rng = Rng.create seed in
  let kt = Units.kt temp in
  List.map
    (fun c ->
      let mean = k *. c /. (a +. k) in
      let sigma = sqrt (kt /. (2. *. (a +. k))) in
      {
        Wham.bias = (fun x -> k *. ((x -. c) ** 2.));
        samples =
          Array.init samples_per (fun _ -> Rng.gaussian_ms rng ~mean ~sigma);
      })
    (Array.to_list centers)

let test_wham_recovers_harmonic () =
  let temp = 300. and a = 2.0 and k = 8.0 in
  let centers = Array.init 11 (fun i -> -2.5 +. (0.5 *. float_of_int i)) in
  let windows =
    harmonic_windows ~temp ~a ~k ~centers ~samples_per:20_000 ~seed:91
  in
  let p = Wham.solve ~temp ~lo:(-2.5) ~hi:2.5 ~bins:50 windows in
  (* Compare recovered F to a x^2 (both shifted to min 0). *)
  let worst = ref 0. in
  Array.iteri
    (fun b f ->
      if not (Float.is_nan f) then begin
        let x = p.Wham.centers.(b) in
        if abs_float x < 2.0 then
          worst := Float.max !worst (abs_float (f -. (a *. x *. x)))
      end)
    p.Wham.free_energy;
  check_true
    (Printf.sprintf "max |F - ax^2| = %.3f < 0.15 kcal/mol" !worst)
    (!worst < 0.15)

let test_wham_empty_bins_are_nan () =
  let temp = 300. in
  let windows =
    [
      {
        Wham.bias = (fun _ -> 0.);
        samples = Array.init 100 (fun i -> float_of_int i /. 100.);
      };
    ]
  in
  let p = Wham.solve ~temp ~lo:(-10.) ~hi:10. ~bins:40 windows in
  check_true "unvisited bins are nan"
    (Array.exists Float.is_nan p.Wham.free_energy);
  check_true "visited bins are finite"
    (Array.exists (fun f -> not (Float.is_nan f)) p.Wham.free_energy)

let test_wham_rejects_no_windows () =
  Alcotest.check_raises "no windows" (Invalid_argument "Wham.solve: no windows")
    (fun () -> ignore (Wham.solve ~temp:300. ~lo:0. ~hi:1. ~bins:10 []))

(* --- Free-energy estimators --- *)

(* Gaussian work distribution: if dU ~ N(mu, sigma^2) then
   dF = mu - beta sigma^2 / 2 exactly (Zwanzig). *)
let test_exp_averaging_gaussian () =
  let temp = 300. in
  let kt = Units.kt temp in
  let rng = Rng.create 92 in
  let mu = 1.0 and sigma = 0.5 in
  let du = Array.init 200_000 (fun _ -> Rng.gaussian_ms rng ~mean:mu ~sigma) in
  let expected = mu -. (sigma *. sigma /. (2. *. kt)) in
  check_close ~rel:0.05 "Zwanzig on Gaussian work" expected
    (Free_energy.exp_averaging ~temp du)

let test_bar_gaussian_symmetric () =
  (* BAR on consistent Gaussian forward/backward work distributions:
     sigma^2 = 2 kT lam, forward mean dF + lam, backward mean -(dF - lam). *)
  let temp = 300. in
  let kt = Units.kt temp in
  let rng = Rng.create 93 in
  let df_true = 0.8 in
  let lam = 0.4 in
  let sigma = sqrt (2. *. kt *. lam) in
  let forward =
    Array.init 100_000 (fun _ ->
        Rng.gaussian_ms rng ~mean:(df_true +. lam) ~sigma)
  in
  let backward =
    Array.init 100_000 (fun _ ->
        Rng.gaussian_ms rng ~mean:(-.(df_true -. lam)) ~sigma)
  in
  check_close ~rel:0.05 "BAR recovers dF" df_true
    (Free_energy.bar ~temp ~forward ~backward)

let test_bar_agrees_with_exp_when_good_overlap () =
  let temp = 300. in
  let rng = Rng.create 94 in
  let kt = Units.kt temp in
  let lam = 0.2 in
  let sigma = sqrt (2. *. kt *. lam) in
  let df_true = -0.5 in
  let forward =
    Array.init 50_000 (fun _ -> Rng.gaussian_ms rng ~mean:(df_true +. lam) ~sigma)
  in
  let backward =
    Array.init 50_000 (fun _ ->
        Rng.gaussian_ms rng ~mean:(-.(df_true -. lam)) ~sigma)
  in
  let bar = Free_energy.bar ~temp ~forward ~backward in
  let zw = Free_energy.exp_averaging ~temp forward in
  check_close ~rel:0.1 "estimators agree" bar zw

let test_jarzynski_gaussian () =
  (* Gaussian work: dF = <W> - beta sigma^2/2; dissipation = beta sigma^2/2. *)
  let temp = 300. in
  let kt = Units.kt temp in
  let rng = Rng.create 190 in
  let mean = 2.0 and sigma = 0.6 in
  let works =
    Array.init 200_000 (fun _ -> Rng.gaussian_ms rng ~mean ~sigma)
  in
  let df, diss = Free_energy.jarzynski ~temp works in
  check_close ~rel:0.05 "Jarzynski dF" (mean -. (sigma *. sigma /. (2. *. kt))) df;
  check_close ~rel:0.1 "dissipation" (sigma *. sigma /. (2. *. kt)) diss

let test_widom_estimator_ideal () =
  (* All-zero insertion energies: mu_ex = 0 exactly. *)
  check_float ~eps:1e-12 "ideal gas" 0.
    (Free_energy.widom ~temp:300. (Array.make 1000 0.))

let test_ti_trapezoid () =
  (* Integral of dU/dl = 3 l^2 over [0,1] is 1; fine grid needed. *)
  let points =
    List.init 101 (fun i ->
        let l = float_of_int i /. 100. in
        (l, 3. *. l *. l))
  in
  check_close ~rel:1e-3 "TI quadrature" 1. (Free_energy.ti_trapezoid points);
  Alcotest.check_raises "too few points"
    (Invalid_argument "Free_energy.ti_trapezoid: need >= 2 points") (fun () ->
      ignore (Free_energy.ti_trapezoid [ (0., 1.) ]))

let test_ti_unsorted_input () =
  let points = [ (1.0, 2.); (0.0, 2.); (0.5, 2.) ] in
  check_close ~rel:1e-12 "constant integrand, unsorted" 2.
    (Free_energy.ti_trapezoid points)

(* --- Structure: radial distribution function --- *)

let test_rdf_ideal_gas_is_flat () =
  let rng = Rng.create 96 in
  let box = Pbc.cubic 20. in
  let sd = Structure.create ~r_max:9. ~bins:30 in
  for _ = 1 to 40 do
    let pos =
      Array.init 200 (fun _ ->
          Vec3.make
            (Rng.uniform_in rng 0. 20.)
            (Rng.uniform_in rng 0. 20.)
            (Rng.uniform_in rng 0. 20.))
    in
    Structure.sample sd box pos ()
  done;
  Alcotest.(check int) "frames" 40 (Structure.frames sd);
  (* Ideal gas: g(r) = 1 away from tiny r where statistics are poor. *)
  Array.iter
    (fun (r, g) ->
      if r > 2. then check_close ~rel:0.15 "g = 1 for ideal gas" 1. g)
    (Structure.g sd)

let test_rdf_lattice_peak () =
  (* Simple cubic lattice, spacing 2: strong peak at r = 2. *)
  let side = 8 in
  let box = Pbc.cubic (2. *. float_of_int side) in
  let pos =
    Array.init (side * side * side) (fun k ->
        let x = k mod side and y = k / side mod side and z = k / (side * side) in
        Vec3.make (2. *. float_of_int x) (2. *. float_of_int y)
          (2. *. float_of_int z))
  in
  (* Keep r_max below the second shell at 2*sqrt(2) so the first shell is
     the unique maximum (for a simple cubic lattice the first two delta
     peaks of g(r) have equal height). *)
  let sd = Structure.create ~r_max:2.6 ~bins:26 in
  Structure.sample sd box pos ();
  let r_peak, g_peak = Structure.first_peak ~r_min:1. sd in
  check_close ~rel:0.05 "first peak at lattice spacing" 2. r_peak;
  check_true "peak is sharp" (g_peak > 5.);
  (* Coordination number through the first shell: 6 nearest neighbors. *)
  check_close ~rel:0.1 "coordination 6" 6.
    (Structure.coordination_number sd ~r_cut:2.5)

let test_rdf_subset () =
  let box = Pbc.cubic 10. in
  (* Two interleaved species; subset selects only the first. *)
  let pos = [| Vec3.make 1. 1. 1.; Vec3.make 3. 1. 1.; Vec3.make 5. 5. 5. |] in
  let sd = Structure.create ~r_max:4. ~bins:16 in
  Structure.sample sd box pos ~subset:[| 0; 1 |] ();
  (* Only the 0-1 pair at r=2 contributes. *)
  let total = Array.fold_left (fun a (_, g) -> a +. g) 0. (Structure.g sd) in
  check_true "only subset pair counted" (total > 0.)

let test_rdf_range_check () =
  let box = Pbc.cubic 10. in
  let sd = Structure.create ~r_max:9. ~bins:10 in
  Alcotest.check_raises "r_max too large"
    (Invalid_argument "Structure.sample: r_max exceeds half the box edge")
    (fun () -> Structure.sample sd box [| Vec3.zero |] ())

(* --- Transport --- *)

let test_msd_ballistic () =
  (* Constant velocity v: MSD(t) = |v|^2 t^2. *)
  let n = 10 in
  let tr = Transport.create ~n in
  let rng = Rng.create 97 in
  let vel = Array.init n (fun _ -> Rng.gaussian_vec rng) in
  for k = 0 to 19 do
    let t = float_of_int k *. 0.5 in
    let pos = Array.map (fun v -> Vec3.scale t v) vel in
    Transport.record tr ~time:t pos vel
  done;
  let v2 =
    Array.fold_left (fun a v -> a +. Vec3.norm2 v) 0. vel /. float_of_int n
  in
  Array.iter
    (fun (dt, m) -> check_close ~rel:1e-9 "ballistic MSD" (v2 *. dt *. dt) m)
    (Transport.msd tr)

let test_msd_diffusive_slope () =
  (* Discrete random walk with step variance s^2 per unit time per
     dimension: MSD = 3 s^2 t, so D = s^2 / 2. *)
  let n = 400 in
  let tr = Transport.create ~n in
  let rng = Rng.create 98 in
  let pos = Array.make n Vec3.zero in
  let vel = Array.make n Vec3.zero in
  let s = 0.3 in
  for k = 0 to 199 do
    Transport.record tr ~time:(float_of_int k) pos vel;
    for i = 0 to n - 1 do
      pos.(i) <- Vec3.add pos.(i) (Vec3.scale s (Rng.gaussian_vec rng))
    done
  done;
  let d = Transport.diffusion_coefficient tr in
  (* Overlapping time origins correlate the estimate; allow 15%. *)
  check_close ~rel:0.15 "random-walk diffusion" (s *. s /. 2.) d

let test_vacf_constant_velocity () =
  let n = 5 in
  let tr = Transport.create ~n in
  let rng = Rng.create 99 in
  let vel = Array.init n (fun _ -> Rng.gaussian_vec rng) in
  for k = 0 to 9 do
    Transport.record tr ~time:(float_of_int k) (Array.make n Vec3.zero) vel
  done;
  Array.iter
    (fun (_, c) -> check_close ~rel:1e-12 "VACF of frozen velocities" 1. c)
    (Transport.vacf tr)

let test_d_unit_conversion () =
  (* 1 A^2 per internal time unit -> cm^2/s. *)
  let expected = 1e-16 /. (Units.time_unit_fs *. 1e-15) in
  check_close ~rel:1e-12 "conversion" expected (Transport.d_cm2_s 1.)

let () =
  Alcotest.run "mdsp_analysis"
    [
      ( "wham",
        [
          Alcotest.test_case "recovers harmonic free energy" `Slow
            test_wham_recovers_harmonic;
          Alcotest.test_case "empty bins" `Quick test_wham_empty_bins_are_nan;
          Alcotest.test_case "rejects empty" `Quick test_wham_rejects_no_windows;
        ] );
      ( "structure",
        [
          Alcotest.test_case "ideal gas flat" `Quick test_rdf_ideal_gas_is_flat;
          Alcotest.test_case "lattice peak" `Quick test_rdf_lattice_peak;
          Alcotest.test_case "subset" `Quick test_rdf_subset;
          Alcotest.test_case "range check" `Quick test_rdf_range_check;
        ] );
      ( "transport",
        [
          Alcotest.test_case "ballistic MSD" `Quick test_msd_ballistic;
          Alcotest.test_case "diffusive slope" `Quick test_msd_diffusive_slope;
          Alcotest.test_case "VACF constant" `Quick test_vacf_constant_velocity;
          Alcotest.test_case "unit conversion" `Quick test_d_unit_conversion;
        ] );
      ( "free_energy",
        [
          Alcotest.test_case "Zwanzig on Gaussian" `Quick
            test_exp_averaging_gaussian;
          Alcotest.test_case "BAR on Gaussian" `Quick test_bar_gaussian_symmetric;
          Alcotest.test_case "BAR vs Zwanzig" `Quick
            test_bar_agrees_with_exp_when_good_overlap;
          Alcotest.test_case "Jarzynski on Gaussian" `Quick
            test_jarzynski_gaussian;
          Alcotest.test_case "Widom ideal" `Quick test_widom_estimator_ideal;
          Alcotest.test_case "TI trapezoid" `Quick test_ti_trapezoid;
          Alcotest.test_case "TI unsorted" `Quick test_ti_unsorted_input;
        ] );
    ]
