(* Tests for the table compiler (Mdsp_core.Table): fitting arbitrary radial
   forms into the pipelines' format, accuracy reporting, convergence. *)

open Mdsp_ff
open Mdsp_core
open Testsupport

let lj = Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 }
let cutoff = 9.0

let test_of_form_shifts () =
  let radial = Table.of_form lj ~cutoff in
  let e_cut, _ = radial (cutoff *. cutoff -. 1e-9) in
  check_true "shifted to zero at cutoff" (abs_float e_cut < 1e-9);
  let unshifted = Table.of_form ~shift:false lj ~cutoff in
  let e0, _ = unshifted 36. in
  check_close ~rel:1e-12 "unshifted matches form" (Nonbonded.energy lj 36.) e0

let test_compile_accuracy_improves_with_n () =
  let radial = Table.of_form lj ~cutoff in
  let err n =
    let t = Table.compile ~r_min:2. ~r_cut:cutoff ~n ~quantize:false radial in
    (Table.accuracy t radial ()).Table.max_rel_force
  in
  let e64 = err 64 and e256 = err 256 and e1024 = err 1024 in
  check_true
    (Printf.sprintf "monotone: %.1e > %.1e > %.1e" e64 e256 e1024)
    (e64 > e256 && e256 > e1024);
  (* Cubic Hermite converges like h^3-h^4: 4x intervals, >= 30x better. *)
  check_true "fast convergence" (e64 /. e256 > 30.)

let test_compile_quantization_floor () =
  (* With quantization on, accuracy bottoms out near the coefficient
     resolution instead of improving forever. *)
  let radial = Table.of_form lj ~cutoff in
  let err n quantize =
    let t = Table.compile ~r_min:2. ~r_cut:cutoff ~n ~quantize radial in
    (Table.accuracy t radial ()).Table.max_rel_force
  in
  let q4096 = err 4096 true and nq4096 = err 4096 false in
  check_true "quantization dominates at high n" (q4096 > nq4096);
  check_true "still accurate" (q4096 < 1e-5)

let test_many_functional_forms_compile () =
  (* The generality claim: diverse forms all fit with small error at the
     same table width. *)
  let forms =
    [
      ("lj", lj);
      ("buckingham", Nonbonded.Buckingham { a = 40000.; b = 3.5; c = 300. });
      ("gauss", Nonbonded.Gaussian_repulsion { height = 10.; width = 3. });
      ( "softcore",
        Nonbonded.Soft_core_lj
          { epsilon = 0.238; sigma = 3.405; alpha = 0.5; lambda = 0.6 } );
      ("erfc", Nonbonded.Coulomb_erfc { qq = 332.; beta = 0.35 });
      ( "sum",
        Nonbonded.Sum
          [ lj; Nonbonded.Gaussian_repulsion { height = 2.; width = 4. } ] );
    ]
  in
  List.iter
    (fun (name, form) ->
      let radial = Table.of_form form ~cutoff in
      let t = Table.compile ~r_min:2. ~r_cut:cutoff ~n:1024 radial in
      let rep = Table.accuracy t radial () in
      check_true
        (Printf.sprintf "%s: max rel force error %.2e < 1e-4" name
           rep.Table.max_rel_force)
        (rep.Table.max_rel_force < 1e-4))
    forms

let test_user_defined_radial () =
  (* A fully custom potential: a double-exponential well. *)
  let radial r2 =
    let r = sqrt r2 in
    let e = (3. *. exp (-.(r -. 4.) ** 2.)) -. (5. *. exp (-.((r -. 6.) ** 2.) /. 2.)) in
    (* f_over_r = -de/dr / r *)
    let de_dr =
      (-6. *. (r -. 4.) *. exp (-.(r -. 4.) ** 2.))
      +. (5. *. (r -. 6.) *. exp (-.((r -. 6.) ** 2.) /. 2.))
    in
    (e, -.de_dr /. r)
  in
  let t = Table.compile ~r_min:1. ~r_cut:cutoff ~n:1024 radial in
  let rep = Table.accuracy t radial () in
  check_true
    (Printf.sprintf "custom form error %.2e" rep.Table.max_rel_force)
    (rep.Table.max_rel_force < 1e-4)

let test_width_for_accuracy () =
  let radial = Table.of_form lj ~cutoff in
  match Table.width_for_accuracy ~r_min:2. ~r_cut:cutoff ~target:1e-4 radial with
  | None -> Alcotest.fail "no width found"
  | Some n ->
      check_true "power of two" (n land (n - 1) = 0);
      let t = Table.compile ~r_min:2. ~r_cut:cutoff ~n radial in
      check_true "meets target"
        ((Table.accuracy t radial ()).Table.max_rel_force <= 1e-4);
      (* Minimality: half the width must miss the target. *)
      if n > 64 then begin
        let t2 = Table.compile ~r_min:2. ~r_cut:cutoff ~n:(n / 2) radial in
        check_true "half width misses"
          ((Table.accuracy t2 radial ()).Table.max_rel_force > 1e-4)
      end

let test_table_c1_continuity () =
  (* Hermite fitting: table values and derivatives agree at knots, so
     evaluation just left/right of a knot boundary must be continuous. *)
  let radial = Table.of_form lj ~cutoff in
  let n = 256 in
  let t = Table.compile ~r_min:2. ~r_cut:cutoff ~n ~quantize:false radial in
  let s0 = 4.0 and s1 = cutoff *. cutoff in
  let width = (s1 -. s0) /. float_of_int n in
  for k = 1 to 5 do
    let knot = s0 +. (float_of_int (k * 40) *. width) in
    let e_l, f_l = Mdsp_machine.Interp_table.eval t (knot -. 1e-9) in
    let e_r, f_r = Mdsp_machine.Interp_table.eval t (knot +. 1e-9) in
    check_close ~rel:1e-6 "energy continuous" e_l e_r;
    check_close ~rel:1e-5 "force continuous" f_l f_r
  done

let test_table_set_of_topology_shapes () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let ts =
    Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo ~cutoff
      ~elec:(Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 })
      ~n:512 ()
  in
  Alcotest.(check int) "2x2 LJ tables" 2 (Array.length ts.Mdsp_machine.Htis.lj);
  check_true "electrostatic table present"
    (ts.Mdsp_machine.Htis.electrostatic <> None);
  let ts_nc =
    Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo ~cutoff
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:512 ()
  in
  check_true "no electrostatic table when chargeless"
    (ts_nc.Mdsp_machine.Htis.electrostatic = None)

let test_electrostatic_shape_table_accuracy () =
  (* The shared qq-scaled shape table must reproduce erfc/r to high
     accuracy. *)
  let beta = 0.35 in
  let shape r2 =
    Nonbonded.eval (Nonbonded.Coulomb_erfc { qq = 1.; beta }) r2
  in
  let t = Table.compile ~r_min:0.8 ~r_cut:cutoff ~n:4096 shape in
  let rep = Table.accuracy t shape () in
  check_true
    (Printf.sprintf "erfc shape error %.2e" rep.Table.max_rel_force)
    (rep.Table.max_rel_force < 1e-4)

let prop_compiled_tables_bounded_error =
  qtest "random LJ parameters compile within tolerance" ~count:25
    QCheck.(pair (float_range 0.05 1.0) (float_range 2.5 4.0))
    (fun (epsilon, sigma) ->
      let form = Nonbonded.Lennard_jones { epsilon; sigma } in
      let radial = Table.of_form form ~cutoff in
      let t = Table.compile ~r_min:(0.7 *. sigma) ~r_cut:cutoff ~n:2048 radial in
      (Table.accuracy t radial ~samples:2000 ()).Table.max_rel_force < 1e-3)

let () =
  Alcotest.run "mdsp_core_table"
    [
      ( "compiler",
        [
          Alcotest.test_case "of_form shifting" `Quick test_of_form_shifts;
          Alcotest.test_case "accuracy improves with width" `Quick
            test_compile_accuracy_improves_with_n;
          Alcotest.test_case "quantization floor" `Quick
            test_compile_quantization_floor;
          Alcotest.test_case "diverse forms compile" `Quick
            test_many_functional_forms_compile;
          Alcotest.test_case "user-defined radial" `Quick
            test_user_defined_radial;
          Alcotest.test_case "width_for_accuracy" `Quick
            test_width_for_accuracy;
          Alcotest.test_case "C1 continuity" `Quick test_table_c1_continuity;
          prop_compiled_tables_bounded_error;
        ] );
      ( "table_sets",
        [
          Alcotest.test_case "topology table set" `Quick
            test_table_set_of_topology_shapes;
          Alcotest.test_case "electrostatic shape" `Quick
            test_electrostatic_shape_table_accuracy;
        ] );
    ]
