(* Tests for Mdsp_ff: nonbonded functional forms, bonded terms, topology
   building, water geometry, and the pair evaluator. Forces are validated
   against numerical gradients throughout. *)

open Mdsp_util
open Mdsp_ff
open Testsupport

(* Check that f_over_r equals -dU/dr / r by central differences on r. *)
let check_form_force ?(rel = 1e-5) form r =
  let h = r *. 1e-5 in
  let e_at x = Nonbonded.energy form (x *. x) in
  let du_dr = (e_at (r +. h) -. e_at (r -. h)) /. (2. *. h) in
  let _, f_over_r = Nonbonded.eval form (r *. r) in
  check_close ~rel "f_over_r = -dU/dr / r" (-.du_dr /. r) f_over_r

let test_lj_minimum () =
  let form = Nonbonded.Lennard_jones { epsilon = 0.5; sigma = 3. } in
  (* Minimum at r = 2^(1/6) sigma with energy -epsilon. *)
  let rmin = (2. ** (1. /. 6.)) *. 3. in
  check_close ~rel:1e-9 "depth" (-0.5) (Nonbonded.energy form (rmin *. rmin));
  let _, f = Nonbonded.eval form (rmin *. rmin) in
  check_true "zero force at minimum" (abs_float f < 1e-9);
  (* energy(sigma^2) = 0; compare shifted by 1 to dodge rel-vs-zero *)
  check_close ~rel:1e-9 "zero crossing at sigma" 1.
    (1. +. Nonbonded.energy form 9.)

let test_forms_force_consistency () =
  let forms =
    [
      Nonbonded.Lennard_jones { epsilon = 0.3; sigma = 3.2 };
      Nonbonded.Buckingham { a = 1000.; b = 3.; c = 120. };
      Nonbonded.Coulomb { qq = 33.2 };
      Nonbonded.Coulomb_erfc { qq = -50.; beta = 0.35 };
      Nonbonded.Gaussian_repulsion { height = 5.; width = 2. };
      Nonbonded.Soft_core_lj
        { epsilon = 0.3; sigma = 3.2; alpha = 0.5; lambda = 0.5 };
      Nonbonded.Morse { d_e = 2.; a = 1.5; r0 = 3.0 };
      Nonbonded.Yukawa { a = 100.; kappa = 0.5 };
      Nonbonded.Lj_12_6_4 { epsilon = 0.3; sigma = 3.2; c4 = 50. };
      Nonbonded.Sum
        [
          Nonbonded.Lennard_jones { epsilon = 0.2; sigma = 3. };
          Nonbonded.Coulomb { qq = 10. };
        ];
    ]
  in
  List.iter
    (fun form ->
      List.iter (fun r -> check_form_force form r) [ 2.5; 3.5; 5.; 7. ])
    forms

let test_softcore_limits () =
  (* lambda = 1 must recover plain LJ; lambda = 0 must vanish. *)
  let eps = 0.4 and sigma = 3.1 in
  let lj = Nonbonded.Lennard_jones { epsilon = eps; sigma } in
  let sc l = Nonbonded.Soft_core_lj { epsilon = eps; sigma; alpha = 0.5; lambda = l } in
  List.iter
    (fun r2 ->
      check_close ~rel:1e-9 "lambda=1 matches LJ" (Nonbonded.energy lj r2)
        (Nonbonded.energy (sc 1.) r2);
      check_float ~eps:1e-12 "lambda=0 vanishes" 0. (Nonbonded.energy (sc 0.) r2))
    [ 6.; 12.; 30. ];
  (* Soft core is finite at r = 0 for lambda < 1 (that is the point). *)
  check_true "finite at r=0"
    (Float.is_finite (Nonbonded.energy (sc 0.5) 1e-12))

let test_truncation_shift_continuous () =
  let form = Nonbonded.Lennard_jones { epsilon = 0.3; sigma = 3.2 } in
  let cutoff = 8. in
  let e_just_inside, _ =
    Nonbonded.eval_truncated form ~cutoff ~trunc:Nonbonded.Shift
      ((cutoff -. 1e-6) ** 2.)
  in
  check_true "shifted energy continuous at cutoff"
    (abs_float e_just_inside < 1e-6)

let test_truncation_switch () =
  let form = Nonbonded.Lennard_jones { epsilon = 0.3; sigma = 3.2 } in
  let cutoff = 8. and r_on = 6. in
  let trunc = Nonbonded.Switch { r_on } in
  (* Inside r_on: untouched. *)
  let e_in, f_in = Nonbonded.eval_truncated form ~cutoff ~trunc 25. in
  let e_raw, f_raw = Nonbonded.eval form 25. in
  check_float ~eps:1e-12 "unswitched below r_on" e_raw e_in;
  check_float ~eps:1e-12 "force unswitched below r_on" f_raw f_in;
  (* Energy goes continuously to zero at the cutoff. *)
  let e_end, _ =
    Nonbonded.eval_truncated form ~cutoff ~trunc ((cutoff -. 1e-5) ** 2.)
  in
  check_true "switched to zero at cutoff" (abs_float e_end < 1e-6);
  (* Force consistency within the switching region. *)
  let r = 7. in
  let h = 1e-6 in
  let e_at x = fst (Nonbonded.eval_truncated form ~cutoff ~trunc (x *. x)) in
  let du_dr = (e_at (r +. h) -. e_at (r -. h)) /. (2. *. h) in
  let _, f_over_r = Nonbonded.eval_truncated form ~cutoff ~trunc (r *. r) in
  check_close ~rel:1e-4 "switch region force" (-.du_dr /. r) f_over_r

let test_morse_well () =
  let form = Nonbonded.Morse { d_e = 2.5; a = 1.2; r0 = 3.0 } in
  (* Minimum at r0 with depth -D_e and zero force. *)
  check_close ~rel:1e-12 "depth" (-2.5) (Nonbonded.energy form 9.);
  let _, f = Nonbonded.eval form 9. in
  check_true "zero force at r0" (abs_float f < 1e-9);
  (* Dissociation: energy -> 0 at large r. *)
  check_true "dissociates" (abs_float (Nonbonded.energy form 10000.) < 1e-4)

let test_yukawa_screening () =
  let bare = Nonbonded.Coulomb { qq = 100. } in
  let screened = Nonbonded.Yukawa { a = 100.; kappa = 0.3 } in
  (* At short range they agree; at long range Yukawa decays faster. *)
  check_close ~rel:0.05 "short range similar" (Nonbonded.energy bare 1.)
    (Nonbonded.energy screened 1. /. exp (-0.3));
  check_true "screened decays faster"
    (Nonbonded.energy screened 100. < 0.2 *. Nonbonded.energy bare 100.)

let test_lorentz_berthelot () =
  match Nonbonded.lorentz_berthelot (0.2, 3.0) (0.8, 4.0) with
  | Nonbonded.Lennard_jones { epsilon; sigma } ->
      check_close ~rel:1e-12 "epsilon geometric" 0.4 epsilon;
      check_close ~rel:1e-12 "sigma arithmetic" 3.5 sigma
  | _ -> Alcotest.fail "expected LJ form"

(* --- Topology --- *)

let build_small_molecule () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.1, 3.0) |];
  let a0 = Topology.Builder.add_atom b ~mass:12. ~charge:0.1 ~type_id:0 ~name:"C1" in
  let a1 = Topology.Builder.add_atom b ~mass:12. ~charge:(-0.1) ~type_id:0 ~name:"C2" in
  let a2 = Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0 ~name:"C3" in
  let a3 = Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0 ~name:"C4" in
  Topology.Builder.add_bond b ~i:a0 ~j:a1 ~k:300. ~r0:1.5;
  Topology.Builder.add_bond b ~i:a1 ~j:a2 ~k:300. ~r0:1.5;
  Topology.Builder.add_bond b ~i:a2 ~j:a3 ~k:300. ~r0:1.5;
  Topology.Builder.add_angle b ~i:a0 ~j:a1 ~k:a2 ~k_theta:50.
    ~theta0:(110. *. Float.pi /. 180.);
  Topology.Builder.add_angle b ~i:a1 ~j:a2 ~k:a3 ~k_theta:50.
    ~theta0:(110. *. Float.pi /. 180.);
  Topology.Builder.add_dihedral b ~i:a0 ~j:a1 ~k:a2 ~l:a3 ~k_phi:2. ~mult:3
    ~phase:0.;
  Topology.Builder.finish b

let test_topology_builder () =
  let topo = build_small_molecule () in
  Alcotest.(check int) "atoms" 4 (Topology.n_atoms topo);
  Alcotest.(check int) "bonds" 3 (Array.length topo.Topology.bonds);
  Alcotest.(check int) "angles" 2 (Array.length topo.Topology.angles);
  Alcotest.(check int) "dihedrals" 1 (Array.length topo.Topology.dihedrals);
  (* through=3 on a 4-chain excludes all pairs. *)
  check_true "1-4 excluded"
    (Mdsp_space.Exclusions.excluded topo.Topology.exclusions 0 3);
  Alcotest.(check int) "dof" (12 - 0 - 3) (Topology.dof topo)

let test_topology_validation () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.1, 3.0) |];
  let a0 = Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0 ~name:"X" in
  Alcotest.check_raises "self bond" (Invalid_argument "Topology.add_bond: self bond")
    (fun () -> Topology.Builder.add_bond b ~i:a0 ~j:a0 ~k:1. ~r0:1.);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Topology.add_bond: atom index out of range") (fun () ->
      Topology.Builder.add_bond b ~i:a0 ~j:5 ~k:1. ~r0:1.);
  Alcotest.check_raises "bad mass"
    (Invalid_argument "Topology.add_atom: mass must be positive") (fun () ->
      ignore (Topology.Builder.add_atom b ~mass:0. ~charge:0. ~type_id:0 ~name:"Y"))

let test_topology_type_id_check () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.1, 3.0) |];
  ignore (Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:3 ~name:"X");
  Alcotest.check_raises "type id out of table"
    (Invalid_argument "Topology.finish: atom type_id outside lj_types table")
    (fun () -> ignore (Topology.Builder.finish b))

(* --- Bonded forces vs numerical gradients --- *)

let bonded_energy topo box positions =
  let acc = Bonded.make_accum (Array.length positions) in
  let eb, ea, ed = Bonded.all box topo positions acc in
  eb +. ea +. ed

let test_bonded_forces_match_numeric () =
  let topo = build_small_molecule () in
  let box = Pbc.cubic 30. in
  (* A bent, twisted conformation exercising all terms. *)
  let positions =
    [|
      Vec3.make 10. 10. 10.;
      Vec3.make 11.5 10.2 10.1;
      Vec3.make 12.3 11.4 10.8;
      Vec3.make 13.1 11.2 12.2;
    |]
  in
  let acc = Bonded.make_accum 4 in
  ignore (Bonded.all box topo positions acc);
  let numeric =
    numeric_forces ~h:1e-5 (fun p -> bonded_energy topo box p) positions
  in
  check_true
    (Printf.sprintf "bonded force error %.2e" (max_vec_diff acc.Bonded.forces numeric))
    (max_vec_diff acc.Bonded.forces numeric < 1e-4)

let test_bond_energy_value () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0., 1.) |];
  let a0 = Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"A" in
  let a1 = Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"B" in
  Topology.Builder.add_bond b ~i:a0 ~j:a1 ~k:100. ~r0:1.0;
  let topo = Topology.Builder.finish b in
  let box = Pbc.cubic 10. in
  let positions = [| Vec3.make 1. 1. 1.; Vec3.make 2.5 1. 1. |] in
  let acc = Bonded.make_accum 2 in
  let e = Bonded.bonds box topo positions acc in
  (* k (r - r0)^2 = 100 * 0.25 *)
  check_close ~rel:1e-12 "bond energy" 25. e;
  (* Newton's third law. *)
  check_true "forces oppose"
    (Vec3.equal_eps ~eps:1e-9 acc.Bonded.forces.(0)
       (Vec3.neg acc.Bonded.forces.(1)))

let test_angle_energy_at_reference () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0., 1.) |];
  let a0 = Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"A" in
  let a1 = Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"B" in
  let a2 = Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"C" in
  Topology.Builder.add_angle b ~i:a0 ~j:a1 ~k:a2 ~k_theta:40.
    ~theta0:(Float.pi /. 2.);
  let topo = Topology.Builder.finish b in
  let box = Pbc.cubic 20. in
  (* Exactly 90 degrees: zero energy and forces. *)
  let positions =
    [| Vec3.make 2. 1. 1.; Vec3.make 1. 1. 1.; Vec3.make 1. 2. 1. |]
  in
  let acc = Bonded.make_accum 3 in
  let e = Bonded.angles box topo positions acc in
  check_true "zero energy at reference" (abs_float e < 1e-12);
  Array.iter
    (fun f -> check_true "zero force at reference" (Vec3.norm f < 1e-9))
    acc.Bonded.forces

let test_dihedral_energy_period () =
  (* Periodic dihedral k (1 + cos(3 phi)): energy at phi=0 is 2k,
     at phi=pi/3 it is 0. *)
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0., 1.) |];
  for i = 0 to 3 do
    ignore
      (Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0
         ~name:(string_of_int i))
  done;
  Topology.Builder.add_dihedral b ~i:0 ~j:1 ~k:2 ~l:3 ~k_phi:1.5 ~mult:3
    ~phase:0.;
  let topo = Topology.Builder.finish b in
  let box = Pbc.cubic 20. in
  let place phi =
    (* Standard geometry: j at origin, k on x, i in xy plane; l rotated by
       phi around the x axis from the +y direction. *)
    [|
      Vec3.make 9. 11. 10.;
      Vec3.make 10. 10. 10.;
      Vec3.make 11. 10. 10.;
      Vec3.add (Vec3.make 12. 0. 0.)
        (Vec3.make 0. (10. +. cos phi) (10. +. sin phi));
    |]
  in
  let energy phi =
    let acc = Bonded.make_accum 4 in
    Bonded.dihedrals box topo (place phi) acc
  in
  check_close ~rel:1e-6 "cis maximum" 3. (energy 0.);
  check_true "pi/3 minimum" (abs_float (energy (Float.pi /. 3.)) < 1e-9)

let test_bonded_newton_third_law_random () =
  let topo = build_small_molecule () in
  let box = Pbc.cubic 25. in
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let positions =
      Array.init 4 (fun i ->
          Vec3.add
            (Vec3.make (10. +. (1.4 *. float_of_int i)) 10. 10.)
            (Vec3.scale 0.5 (Rng.gaussian_vec rng)))
    in
    let acc = Bonded.make_accum 4 in
    ignore (Bonded.all box topo positions acc);
    let total = Array.fold_left Vec3.add Vec3.zero acc.Bonded.forces in
    check_true "forces sum to zero" (Vec3.norm total < 1e-8)
  done

let test_improper_forces_and_energy () =
  (* A near-planar center: i-j-k-l with xi0 = 0 restores planarity. *)
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0., 1.) |];
  for i = 0 to 3 do
    ignore
      (Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0
         ~name:(string_of_int i))
  done;
  Topology.Builder.add_improper b ~i:0 ~j:1 ~k:2 ~l:3 ~k_xi:20. ~xi0:0.;
  let topo = Topology.Builder.finish b in
  let box = Pbc.cubic 30. in
  (* Perfectly planar: zero energy, zero force. *)
  let planar =
    [|
      Vec3.make 9. 11. 10.; Vec3.make 10. 10. 10.;
      Vec3.make 11. 10. 10.; Vec3.make 12. 11. 10.;
    |]
  in
  let acc = Bonded.make_accum 4 in
  let e = Bonded.impropers box topo planar acc in
  check_true "planar zero energy" (abs_float e < 1e-12);
  Array.iter
    (fun f -> check_true "planar zero force" (Vec3.norm f < 1e-9))
    acc.Bonded.forces;
  (* Out-of-plane distortion: positive energy, forces match numerics. *)
  let bent =
    [|
      Vec3.make 9. 11. 10.4; Vec3.make 10. 10. 10.;
      Vec3.make 11. 10. 10.; Vec3.make 12. 11. 10.1;
    |]
  in
  let acc2 = Bonded.make_accum 4 in
  let e2 = Bonded.impropers box topo bent acc2 in
  check_true "distorted positive" (e2 > 0.01);
  let numeric =
    numeric_forces ~h:1e-6
      (fun p ->
        let a = Bonded.make_accum 4 in
        Bonded.impropers box topo p a)
      bent
  in
  check_true "improper forces match numerics"
    (max_vec_diff acc2.Bonded.forces numeric < 1e-4);
  (* Included in the term count and the `all` total. *)
  Alcotest.(check int) "term count" 1 (Bonded.term_count topo);
  let acc3 = Bonded.make_accum 4 in
  let _, _, ed = Bonded.all box topo bent acc3 in
  check_close ~rel:1e-12 "folded into dihedral total" e2 ed

let test_improper_angle_wrap () =
  (* xi0 near pi: the difference must wrap, not jump by 2 pi. *)
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0., 1.) |];
  for i = 0 to 3 do
    ignore
      (Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0
         ~name:(string_of_int i))
  done;
  Topology.Builder.add_improper b ~i:0 ~j:1 ~k:2 ~l:3 ~k_xi:10.
    ~xi0:(Float.pi -. 0.05);
  let topo = Topology.Builder.finish b in
  let box = Pbc.cubic 30. in
  (* Trans-like geometry: phi close to pi (or -pi); energy must be small,
     not ~ (2 pi)^2 k. *)
  let trans =
    [|
      Vec3.make 9. 11. 10.; Vec3.make 10. 10. 10.;
      Vec3.make 11. 10. 10.; Vec3.make 12. 9. 10.;
    |]
  in
  let acc = Bonded.make_accum 4 in
  let e = Bonded.impropers box topo trans acc in
  check_true (Printf.sprintf "wrapped energy small (%.3f)" e) (e < 1.)

(* --- 1-4 scaled pairs --- *)

let chain_topology_with_14 ~lj ~coul =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.2, 3.0) |];
  for i = 0 to 3 do
    ignore
      (Topology.Builder.add_atom b ~mass:12.
         ~charge:(if i = 0 then 0.3 else if i = 3 then -0.3 else 0.)
         ~type_id:0
         ~name:(string_of_int i))
  done;
  for i = 0 to 2 do
    Topology.Builder.add_bond b ~i ~j:(i + 1) ~k:100. ~r0:1.5
  done;
  Topology.Builder.set_scale14 b ~lj ~coul;
  Topology.Builder.finish b

let test_pairs14_detected () =
  let topo = chain_topology_with_14 ~lj:0.5 ~coul:0.8333 in
  Alcotest.(check (array (pair int int))) "the single 1-4 pair" [| (0, 3) |]
    topo.Topology.pairs14;
  (* Still excluded from the nonbonded sum. *)
  check_true "still excluded"
    (Mdsp_space.Exclusions.excluded topo.Topology.exclusions 0 3)

let test_pairs14_energy_scales () =
  let box = Pbc.cubic 30. in
  let positions =
    [|
      Vec3.make 10. 10. 10.; Vec3.make 11.5 10. 10.;
      Vec3.make 12.5 11.1 10.; Vec3.make 14. 11.1 10.;
    |]
  in
  let e scale_lj scale_coul =
    let topo = chain_topology_with_14 ~lj:scale_lj ~coul:scale_coul in
    let acc = Bonded.make_accum 4 in
    Pair_interactions.compute_pairs14 topo ~cutoff:9. box positions acc
  in
  check_float ~eps:1e-12 "zero scales give zero" 0. (e 0. 0.);
  (* Linear in each scale factor. *)
  check_close ~rel:1e-9 "LJ part linear" (2. *. (e 0.5 0. )) (e 1.0 0.);
  check_close ~rel:1e-9 "Coulomb part linear" (2. *. (e 0. 0.4)) (e 0. 0.8);
  check_close ~rel:1e-9 "parts add" (e 0.5 0. +. e 0. 0.5) (e 0.5 0.5)

let test_pairs14_forces_numeric () =
  let topo = chain_topology_with_14 ~lj:0.5 ~coul:0.8333 in
  let box = Pbc.cubic 30. in
  let positions =
    [|
      Vec3.make 10. 10. 10.; Vec3.make 11.5 10.2 10.1;
      Vec3.make 12.4 11.3 10.6; Vec3.make 13.9 11.2 11.4;
    |]
  in
  let acc = Bonded.make_accum 4 in
  ignore (Pair_interactions.compute_pairs14 topo ~cutoff:9. box positions acc);
  let numeric =
    numeric_forces ~h:1e-6
      (fun p ->
        let a = Bonded.make_accum 4 in
        Pair_interactions.compute_pairs14 topo ~cutoff:9. box p a)
      positions
  in
  check_true "1-4 forces match numerics"
    (max_vec_diff acc.Bonded.forces numeric < 1e-4);
  (* Middle atoms feel nothing from the 1-4 term. *)
  check_true "only ends involved"
    (Vec3.norm acc.Bonded.forces.(1) < 1e-12
    && Vec3.norm acc.Bonded.forces.(2) < 1e-12)

(* --- Water --- *)

let test_water_geometry () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| Water.o_lj; (0., 1.) |];
  let rng = Rng.create 5 in
  let _, pos =
    Water.add_molecule b ~o_type:0 ~h_type:1 ~center:(Vec3.make 5. 5. 5.)
      ~orient:rng
  in
  let topo = Topology.Builder.finish b in
  check_close ~rel:1e-9 "O-H1" Water.oh_dist (Vec3.dist pos.(0) pos.(1));
  check_close ~rel:1e-9 "O-H2" Water.oh_dist (Vec3.dist pos.(0) pos.(2));
  check_close ~rel:1e-9 "H-H" Water.hh_dist (Vec3.dist pos.(1) pos.(2));
  Alcotest.(check int) "three constraints" 3 (Topology.n_constraints topo);
  (* Neutral molecule. *)
  let q = Array.fold_left ( +. ) 0. (Topology.charges topo) in
  check_true "neutral" (abs_float q < 1e-12);
  (* All intra-molecular pairs excluded. *)
  check_true "O-H excluded"
    (Mdsp_space.Exclusions.excluded topo.Topology.exclusions 0 1);
  check_true "H-H excluded"
    (Mdsp_space.Exclusions.excluded topo.Topology.exclusions 1 2)

(* --- Pair evaluator --- *)

let lj_pair_topology () =
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.3, 3.0) |];
  ignore (Topology.Builder.add_atom b ~mass:1. ~charge:0.5 ~type_id:0 ~name:"A");
  ignore (Topology.Builder.add_atom b ~mass:1. ~charge:(-0.5) ~type_id:0 ~name:"B");
  Topology.Builder.finish b

let test_evaluator_coulomb_variants_force_consistency () =
  let topo = lj_pair_topology () in
  let cutoff = 8. in
  List.iter
    (fun elec ->
      let ev =
        Pair_interactions.of_topology topo ~cutoff ~trunc:Nonbonded.Shift ~elec
      in
      List.iter
        (fun r ->
          let h = 1e-6 in
          let e x = fst (ev.Pair_interactions.eval 0 1 (x *. x)) in
          let du_dr = (e (r +. h) -. e (r -. h)) /. (2. *. h) in
          let _, f_over_r = ev.Pair_interactions.eval 0 1 (r *. r) in
          check_close ~rel:1e-3 "evaluator force consistency" (-.du_dr /. r)
            f_over_r)
        [ 3.; 4.5; 6. ])
    [
      Pair_interactions.No_coulomb;
      Pair_interactions.Cutoff_coulomb;
      Pair_interactions.Reaction_field { epsilon_rf = 78.5 };
      Pair_interactions.Ewald_real { beta = 0.35 };
    ]

let test_evaluator_zero_beyond_cutoff () =
  let topo = lj_pair_topology () in
  let ev =
    Pair_interactions.of_topology topo ~cutoff:8. ~trunc:Nonbonded.Shift
      ~elec:Pair_interactions.Cutoff_coulomb
  in
  let e, f = ev.Pair_interactions.eval 0 1 100. in
  check_float ~eps:0. "zero energy" 0. e;
  check_float ~eps:0. "zero force" 0. f

let test_compute_all_pairs_matches_nlist () =
  let box, positions = random_positions ~seed:51 ~n:60 ~box_l:14. ~min_dist:2.2 in
  let b = Topology.Builder.create () in
  Topology.Builder.set_lj_types b [| (0.25, 3.1) |];
  for _ = 1 to 60 do
    ignore (Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"X")
  done;
  let topo = Topology.Builder.finish b in
  let ev =
    Pair_interactions.of_topology topo ~cutoff:5. ~trunc:Nonbonded.Shift
      ~elec:Pair_interactions.No_coulomb
  in
  let nl = Mdsp_space.Neighbor_list.create ~cutoff:5. ~skin:1. box positions in
  let acc1 = Bonded.make_accum 60 in
  let e1 = Pair_interactions.compute ev box nl positions acc1 in
  let acc2 = Bonded.make_accum 60 in
  let e2 = Pair_interactions.compute_all_pairs ev box positions acc2 in
  check_close ~rel:1e-12 "energies equal" e2 e1;
  check_true "forces equal" (max_vec_diff acc1.Bonded.forces acc2.Bonded.forces < 1e-10);
  check_close ~rel:1e-9 "virials equal" acc2.Bonded.virial acc1.Bonded.virial

let test_pair_virial_sign () =
  (* Two atoms inside the repulsive wall: virial must be positive. *)
  let topo = lj_pair_topology () in
  let ev =
    Pair_interactions.of_topology topo ~cutoff:8. ~trunc:Nonbonded.Shift
      ~elec:Pair_interactions.No_coulomb
  in
  let box = Pbc.cubic 20. in
  let positions = [| Vec3.make 5. 5. 5.; Vec3.make 7.5 5. 5. |] in
  let acc = Bonded.make_accum 2 in
  ignore (Pair_interactions.compute_all_pairs ev box positions acc);
  check_true "repulsive virial positive" (acc.Bonded.virial > 0.)

let () =
  Alcotest.run "mdsp_ff"
    [
      ( "nonbonded",
        [
          Alcotest.test_case "LJ minimum" `Quick test_lj_minimum;
          Alcotest.test_case "all forms force consistency" `Quick
            test_forms_force_consistency;
          Alcotest.test_case "soft-core limits" `Quick test_softcore_limits;
          Alcotest.test_case "Morse well" `Quick test_morse_well;
          Alcotest.test_case "Yukawa screening" `Quick test_yukawa_screening;
          Alcotest.test_case "shift continuity" `Quick
            test_truncation_shift_continuous;
          Alcotest.test_case "switch truncation" `Quick test_truncation_switch;
          Alcotest.test_case "Lorentz-Berthelot" `Quick test_lorentz_berthelot;
        ] );
      ( "topology",
        [
          Alcotest.test_case "builder" `Quick test_topology_builder;
          Alcotest.test_case "validation" `Quick test_topology_validation;
          Alcotest.test_case "type id check" `Quick test_topology_type_id_check;
        ] );
      ( "bonded",
        [
          Alcotest.test_case "forces match numeric gradient" `Quick
            test_bonded_forces_match_numeric;
          Alcotest.test_case "improper energy/forces" `Quick
            test_improper_forces_and_energy;
          Alcotest.test_case "improper angle wrap" `Quick
            test_improper_angle_wrap;
          Alcotest.test_case "bond energy value" `Quick test_bond_energy_value;
          Alcotest.test_case "angle at reference" `Quick
            test_angle_energy_at_reference;
          Alcotest.test_case "dihedral periodicity" `Quick
            test_dihedral_energy_period;
          Alcotest.test_case "Newton's third law" `Quick
            test_bonded_newton_third_law_random;
        ] );
      ( "pairs14",
        [
          Alcotest.test_case "detection" `Quick test_pairs14_detected;
          Alcotest.test_case "scaling" `Quick test_pairs14_energy_scales;
          Alcotest.test_case "forces" `Quick test_pairs14_forces_numeric;
        ] );
      ("water", [ Alcotest.test_case "geometry" `Quick test_water_geometry ]);
      ( "pair_evaluator",
        [
          Alcotest.test_case "coulomb variants force consistency" `Quick
            test_evaluator_coulomb_variants_force_consistency;
          Alcotest.test_case "zero beyond cutoff" `Quick
            test_evaluator_zero_beyond_cutoff;
          Alcotest.test_case "all-pairs matches neighbor list" `Quick
            test_compute_all_pairs_matches_nlist;
          Alcotest.test_case "virial sign" `Quick test_pair_virial_sign;
        ] );
    ]
